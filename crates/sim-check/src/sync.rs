//! Modeled synchronization primitives: drop-in lookalikes of
//! `std::sync::atomic`, `Mutex`, and `Condvar` whose every operation is
//! a scheduling point of the [explorer](crate::Explorer), plus
//! [`RaceCell`] for plain shared data under vector-clock race
//! detection, and [`spawn`]/[`JoinHandle`] for model threads.
//!
//! Semantics notes (documented deviations from the hardware/libstd):
//!
//! * Atomics are sequentially consistent in *value* (the interleaving
//!   is explicit), but memory-`Ordering` arguments still matter: they
//!   drive the happens-before edges used by race detection. `Relaxed`
//!   operations exchange no clocks; acquire-flavored reads join the
//!   object's release clock; release-flavored writes publish into it.
//!   Release clocks accumulate across writers (release-sequence
//!   semantics, slightly conservative for plain `Release` stores).
//! * `Condvar` has no spurious wakeups: a wait returns only after a
//!   notify. A `notify_one` with no parked waiter is a no-op — exactly
//!   the semantics that make *lost wakeups* observable as deadlocks.
//! * `Condvar::wait` releases the mutex and blocks atomically (as the
//!   real one does); the reacquire after wakeup is its own scheduling
//!   point.

use crate::sched::{
    alloc_obj, current, hand_off, park_for_grant, raise_violation, with_state, yield_op, ObjId,
    ObjState, Op, OpKind, TState, ViolationKind,
};
use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;

fn acquire_flavored(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn release_flavored(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Shared raw-atomic core: a `u64` slot in the kernel.
#[derive(Debug)]
struct RawAtomic {
    id: ObjId,
}

impl RawAtomic {
    fn new(val: u64, label: &str) -> RawAtomic {
        RawAtomic {
            id: alloc_obj(
                ObjState::Atomic {
                    val,
                    vc: crate::vc::VecClock::new(),
                },
                label,
            ),
        }
    }

    fn load(&self, ord: Ordering) -> u64 {
        yield_op(Op::new(OpKind::ALoad, self.id));
        let (_, me) = current();
        with_state(|st| {
            let (val, ovc) = match &st.exec.objs[self.id].state {
                ObjState::Atomic { val, vc } => (*val, vc.clone()),
                _ => unreachable!("atomic op on non-atomic"),
            };
            if acquire_flavored(ord) {
                st.exec.threads[me].vc.join(&ovc);
            }
            st.exec.threads[me].vc.bump(me);
            val
        })
    }

    fn store(&self, v: u64, ord: Ordering) {
        yield_op(Op::new(OpKind::AStore, self.id));
        let (_, me) = current();
        with_state(|st| {
            let tvc = st.exec.threads[me].vc.clone();
            match &mut st.exec.objs[self.id].state {
                ObjState::Atomic { val, vc } => {
                    *val = v;
                    if release_flavored(ord) {
                        vc.join(&tvc);
                    }
                }
                _ => unreachable!("atomic op on non-atomic"),
            }
            st.exec.threads[me].vc.bump(me);
        });
    }

    fn rmw(&self, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        yield_op(Op::new(OpKind::ARmw, self.id));
        let (_, me) = current();
        with_state(|st| {
            let ovc = match &st.exec.objs[self.id].state {
                ObjState::Atomic { vc, .. } => vc.clone(),
                _ => unreachable!("atomic op on non-atomic"),
            };
            if acquire_flavored(ord) {
                st.exec.threads[me].vc.join(&ovc);
            }
            let tvc = st.exec.threads[me].vc.clone();
            let old = match &mut st.exec.objs[self.id].state {
                ObjState::Atomic { val, vc } => {
                    let old = *val;
                    *val = f(old);
                    if release_flavored(ord) {
                        vc.join(&tvc);
                    }
                    old
                }
                _ => unreachable!("atomic op on non-atomic"),
            };
            st.exec.threads[me].vc.bump(me);
            old
        })
    }
}

/// Modeled `AtomicU64`.
#[derive(Debug)]
pub struct AtomicU64(RawAtomic);

impl AtomicU64 {
    /// A fresh atomic with a diagnostic label (shown in violation
    /// traces).
    pub fn new(v: u64, label: &str) -> AtomicU64 {
        AtomicU64(RawAtomic::new(v, label))
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> u64 {
        self.0.load(ord)
    }

    /// Atomic store.
    pub fn store(&self, v: u64, ord: Ordering) {
        self.0.store(v, ord)
    }

    /// Atomic add, returning the previous value.
    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        self.0.rmw(ord, |x| x.wrapping_add(v))
    }

    /// Atomic subtract, returning the previous value.
    pub fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
        self.0.rmw(ord, |x| x.wrapping_sub(v))
    }

    /// Atomic swap, returning the previous value.
    pub fn swap(&self, v: u64, ord: Ordering) -> u64 {
        self.0.rmw(ord, |_| v)
    }
}

/// Modeled `AtomicUsize`.
#[derive(Debug)]
pub struct AtomicUsize(RawAtomic);

impl AtomicUsize {
    /// A fresh atomic with a diagnostic label.
    pub fn new(v: usize, label: &str) -> AtomicUsize {
        AtomicUsize(RawAtomic::new(v as u64, label))
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> usize {
        self.0.load(ord) as usize
    }

    /// Atomic store.
    pub fn store(&self, v: usize, ord: Ordering) {
        self.0.store(v as u64, ord)
    }

    /// Atomic add, returning the previous value.
    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.0.rmw(ord, |x| x.wrapping_add(v as u64)) as usize
    }

    /// Atomic subtract, returning the previous value.
    pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        self.0.rmw(ord, |x| x.wrapping_sub(v as u64)) as usize
    }
}

/// Modeled `AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool(RawAtomic);

impl AtomicBool {
    /// A fresh atomic with a diagnostic label.
    pub fn new(v: bool, label: &str) -> AtomicBool {
        AtomicBool(RawAtomic::new(u64::from(v), label))
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        self.0.load(ord) != 0
    }

    /// Atomic store.
    pub fn store(&self, v: bool, ord: Ordering) {
        self.0.store(u64::from(v), ord)
    }
}

/// Modeled `Mutex<T>`. The payload lives host-side; access is
/// serialized by the model's hold-exclusivity (asserted in the kernel).
#[derive(Debug)]
pub struct Mutex<T> {
    id: ObjId,
    data: UnsafeCell<T>,
}

// SAFETY: the payload is only reachable through `lock()`, and the
// kernel enforces at most one holder at a time; the explorer runs at
// most one model thread at any instant, and hand-offs go through the
// engine mutex, which provides the host-level happens-before edges.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only exposes the payload through the
// single-holder `lock()` protocol.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// A fresh mutex with a diagnostic label.
    pub fn new(data: T, label: &str) -> Mutex<T> {
        Mutex {
            id: alloc_obj(
                ObjState::Mutex {
                    held: None,
                    vc: crate::vc::VecClock::new(),
                },
                label,
            ),
            data: UnsafeCell::new(data),
        }
    }

    /// Blocks until the mutex is acquired (a scheduling point; the
    /// explorer only grants the op when the mutex is free).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        yield_op(Op::new(OpKind::Lock, self.id));
        let (_, me) = current();
        with_state(|st| {
            let ovc = match &mut st.exec.objs[self.id].state {
                ObjState::Mutex { held, vc } => {
                    assert!(held.is_none(), "mutex granted while held (bug)");
                    *held = Some(me);
                    vc.clone()
                }
                _ => unreachable!("lock on non-mutex"),
            };
            st.exec.threads[me].vc.join(&ovc);
            st.exec.threads[me].vc.bump(me);
        });
        MutexGuard { m: self }
    }
}

/// RAII guard for a modeled [`Mutex`]; releasing it is a scheduling
/// point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    m: &'a Mutex<T>,
}

impl<T> MutexGuard<'_, T> {
    fn unlock_op(&self) {
        yield_op(Op::new(OpKind::Unlock, self.m.id));
        let (_, me) = current();
        with_state(|st| {
            let tvc = st.exec.threads[me].vc.clone();
            match &mut st.exec.objs[self.m.id].state {
                ObjState::Mutex { held, vc } => {
                    assert_eq!(*held, Some(me), "unlock by non-holder (bug)");
                    *held = None;
                    vc.join(&tvc);
                }
                _ => unreachable!("unlock on non-mutex"),
            }
            st.exec.threads[me].vc.bump(me);
        });
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the kernel guarantees this thread is the unique
        // holder for the guard's lifetime.
        unsafe { &*self.m.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — unique holder.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // During an abort (or a model assertion failure) the guard is
        // dropped while unwinding; performing a scheduling point there
        // would panic inside a panic. The execution is being torn down
        // wholesale, so skipping the model unlock is sound.
        if std::thread::panicking() {
            return;
        }
        self.unlock_op();
    }
}

/// Modeled `Condvar`. No spurious wakeups; `notify_one` with no parked
/// waiter is a no-op (this is what makes lost wakeups detectable).
#[derive(Debug)]
pub struct Condvar {
    id: ObjId,
}

impl Condvar {
    /// A fresh condvar with a diagnostic label.
    pub fn new(label: &str) -> Condvar {
        Condvar {
            id: alloc_obj(
                ObjState::Condvar {
                    waiters: Vec::new(),
                },
                label,
            ),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified;
    /// reacquires before returning (its own scheduling point).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.m;
        // The release is part of the CvWait op; forget the guard so its
        // Drop does not issue a second unlock.
        std::mem::forget(guard);
        yield_op(Op {
            kind: OpKind::CvWait,
            obj: self.id,
            obj2: Some(mutex.id),
        });
        let (engine, me) = current();
        with_state(|st| {
            let tvc = st.exec.threads[me].vc.clone();
            match &mut st.exec.objs[mutex.id].state {
                ObjState::Mutex { held, vc } => {
                    assert_eq!(*held, Some(me), "cv wait without holding the mutex");
                    *held = None;
                    vc.join(&tvc);
                }
                _ => unreachable!("cv wait guard on non-mutex"),
            }
            match &mut st.exec.objs[self.id].state {
                ObjState::Condvar { waiters } => waiters.push((me, mutex.id)),
                _ => unreachable!("cv wait on non-condvar"),
            }
            st.exec.threads[me].state = TState::BlockedCv;
            st.exec.threads[me].vc.bump(me);
        });
        hand_off();
        // Park until a notifier re-arms us with a Lock op and the
        // scheduler grants it.
        {
            let st = crate::sched::lock_engine(&engine);
            park_for_grant(&engine, st, me);
        }
        // Granted: perform the reacquire.
        with_state(|st| {
            let ovc = match &mut st.exec.objs[mutex.id].state {
                ObjState::Mutex { held, vc } => {
                    assert!(held.is_none(), "cv reacquire granted while held (bug)");
                    *held = Some(me);
                    vc.clone()
                }
                _ => unreachable!(),
            };
            st.exec.threads[me].vc.join(&ovc);
            st.exec.threads[me].vc.bump(me);
        });
        MutexGuard { m: mutex }
    }

    /// Wakes the longest-parked waiter, if any (FIFO — a documented
    /// determinism restriction of the model).
    pub fn notify_one(&self) {
        self.notify(false)
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.notify(true)
    }

    fn notify(&self, all: bool) {
        yield_op(Op::new(OpKind::Notify, self.id));
        let (_, me) = current();
        with_state(|st| {
            let woken: Vec<(crate::sched::Tid, ObjId)> = match &mut st.exec.objs[self.id].state {
                ObjState::Condvar { waiters } => {
                    if all {
                        std::mem::take(waiters)
                    } else if waiters.is_empty() {
                        Vec::new()
                    } else {
                        vec![waiters.remove(0)]
                    }
                }
                _ => unreachable!("notify on non-condvar"),
            };
            for (t, m) in woken {
                debug_assert_eq!(st.exec.threads[t].state, TState::BlockedCv);
                st.exec.threads[t].state = TState::AtPoint;
                st.exec.threads[t].pending = Some(Op::new(OpKind::Lock, m));
            }
            st.exec.threads[me].vc.bump(me);
        });
    }
}

/// Plain shared data under vector-clock data-race detection: any pair
/// of unordered conflicting accesses (at least one write, no
/// happens-before edge between them) fails the execution with
/// [`ViolationKind::DataRace`]. This is what "no data race on
/// tile-disjoint lanes" is checked with.
#[derive(Debug)]
pub struct RaceCell<T> {
    id: ObjId,
    val: UnsafeCell<T>,
}

// SAFETY: the explorer runs at most one model thread at a time and
// every access goes through a scheduling point, so host-level accesses
// to `val` are serialized (races are detected *logically* via vector
// clocks, not by actual unsynchronized access).
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: as above — accesses are kernel-serialized; `Sync` exposes no
// unserialized path to `val`.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    /// A fresh cell with a diagnostic label.
    pub fn new(val: T, label: &str) -> RaceCell<T> {
        RaceCell {
            id: alloc_obj(
                ObjState::Cell {
                    write: None,
                    reads: Vec::new(),
                },
                label,
            ),
            val: UnsafeCell::new(val),
        }
    }

    /// Reads the cell (a racy read if unordered with the last write).
    pub fn get(&self) -> T {
        yield_op(Op::new(OpKind::CellRead, self.id));
        let (_, me) = current();
        let race: Option<String> = with_state(|st| {
            let tvc = st.exec.threads[me].vc.clone();
            let label = st.exec.objs[self.id].label.clone();
            match &mut st.exec.objs[self.id].state {
                ObjState::Cell { write, reads } => {
                    if let Some((wt, wc)) = *write {
                        if wt != me && tvc.get(wt) < wc {
                            return Some(format!(
                                "read of {label} by T{me} races with write by T{wt}"
                            ));
                        }
                    }
                    let epoch = tvc.get(me);
                    match reads.iter_mut().find(|(t, _)| *t == me) {
                        Some(r) => r.1 = epoch,
                        None => reads.push((me, epoch)),
                    }
                    None
                }
                _ => unreachable!("cell op on non-cell"),
            }
        });
        if let Some(detail) = race {
            raise_violation(ViolationKind::DataRace, detail);
        }
        with_state(|st| st.exec.threads[me].vc.bump(me));
        // SAFETY: model threads are serialized; the race above is a
        // logical finding, not a host-level one.
        unsafe { *self.val.get() }
    }

    /// Writes the cell (racy if unordered with any prior access).
    pub fn set(&self, v: T) {
        yield_op(Op::new(OpKind::CellWrite, self.id));
        let (_, me) = current();
        let race: Option<String> = with_state(|st| {
            let tvc = st.exec.threads[me].vc.clone();
            let label = st.exec.objs[self.id].label.clone();
            match &mut st.exec.objs[self.id].state {
                ObjState::Cell { write, reads } => {
                    if let Some((wt, wc)) = *write {
                        if wt != me && tvc.get(wt) < wc {
                            return Some(format!(
                                "write of {label} by T{me} races with write by T{wt}"
                            ));
                        }
                    }
                    for &(rt, rc) in reads.iter() {
                        if rt != me && tvc.get(rt) < rc {
                            return Some(format!(
                                "write of {label} by T{me} races with read by T{rt}"
                            ));
                        }
                    }
                    *write = Some((me, tvc.get(me)));
                    reads.clear();
                    None
                }
                _ => unreachable!("cell op on non-cell"),
            }
        });
        if let Some(detail) = race {
            raise_violation(ViolationKind::DataRace, detail);
        }
        with_state(|st| st.exec.threads[me].vc.bump(me));
        // SAFETY: as in `get` — serialized host access.
        unsafe {
            *self.val.get() = v;
        }
    }
}

/// Handle to a spawned model thread.
#[derive(Debug)]
pub struct JoinHandle {
    token: ObjId,
}

impl JoinHandle {
    /// Blocks until the thread finishes (enabled only once its `Finish`
    /// op has executed); joins its clock into the caller's.
    pub fn join(self) {
        yield_op(Op::new(OpKind::Join, self.token));
        let (_, me) = current();
        with_state(|st| {
            let target_vc = st
                .exec
                .threads
                .iter()
                .find(|t| t.token == self.token && t.state == TState::Finished)
                .and_then(|t| t.final_vc.clone())
                .expect("join granted on unfinished thread (bug)");
            st.exec.threads[me].vc.join(&target_vc);
            st.exec.threads[me].vc.bump(me);
        });
    }
}

/// Spawns a named model thread running `f`. The child runs no user
/// code until the scheduler grants its `Start` op, so spawning is
/// deterministic; the parent resumes once the child has parked at that
/// first scheduling point.
pub fn spawn(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let (engine, me) = current();
    let (tid, token) = crate::sched::register_thread(name.to_string(), Some(me));
    crate::sched::dispatch_thread(&engine, tid, token, f);
    // Wait for the child to park at its Start op (it runs no user code
    // before that), so spawn order stays deterministic.
    let mut st = crate::sched::lock_engine(&engine);
    loop {
        if st.exec.abort {
            drop(st);
            std::panic::panic_any(crate::sched::abort_payload());
        }
        let s = st.exec.threads[tid].state;
        if s == TState::AtPoint || s == TState::Dead {
            break;
        }
        st = crate::sched::wait_engine(&engine, st);
    }
    drop(st);
    JoinHandle { token }
}
