//! Model mirrors of the workspace's sharding primitives and protocols.
//!
//! Each model is a line-by-line transcription of its original against
//! the [modeled primitives](crate::sync), so the explorer can walk
//! every interleaving of the *actual algorithm* — same operations, same
//! memory orderings, same lock scopes:
//!
//! * [`ModelSpinBarrier`] ↔ `sim_base::shard::SpinBarrier`
//! * [`ModelEpochGate`] ↔ `sim_base::shard::EpochGate`
//! * [`run_cycle_protocol`] ↔ the `CycleCtx` compute/exchange phase
//!   protocol of `sim-cmp::par::worker_loop` +
//!   `System::run_with_workers`
//! * [`run_epoch_protocol`] ↔ the `EpochCtx` free-run/apply protocol of
//!   `sim-cmp::par::epoch_worker_loop` + `System::run_epochs_parallel`
//!
//! The only deliberate deviations: the spin budget is a constructor
//! parameter (the real `SPIN_LIMIT = 64` would add 64 scheduling points
//! per park for no extra coverage — every distinct spin/park outcome is
//! already reachable with a budget of 0 or 1), and the crossing/wakeup
//! counters are dropped (diagnostics, not synchronization).
//!
//! Each primitive also has a **deliberately broken** constructor
//! seeding a real-world bug class; `tests/broken.rs` proves the
//! explorer detects both. That is the regression corpus guarding the
//! checker itself: if a refactor of the explorer stopped finding these,
//! the suite fails.
//!
//! **When `sim_base::shard` or `sim-cmp::par` change, change these
//! mirrors in the same PR** — the correspondence is a review-checklist
//! item (`DESIGN.md` §14).

mod epoch_gate;
mod shard_phase;
mod spin_barrier;

pub use epoch_gate::ModelEpochGate;
pub use shard_phase::{run_cycle_protocol, run_cycle_protocol_once, run_epoch_protocol};
pub use spin_barrier::ModelSpinBarrier;
