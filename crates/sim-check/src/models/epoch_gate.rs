//! Model mirror of `sim_base::shard::EpochGate`.

use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex};
use std::sync::atomic::Ordering;

/// One worker's doorbell: ring sequence number plus a condvar to park
/// on — the model twin of the private `Doorbell` in `sim_base::shard`.
#[derive(Debug)]
struct ModelDoorbell {
    seq: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ModelDoorbell {
    fn new(w: usize) -> ModelDoorbell {
        ModelDoorbell {
            seq: AtomicU64::new(0, &format!("doorbell[{w}].seq")),
            lock: Mutex::new((), &format!("doorbell[{w}].lock")),
            cv: Condvar::new(&format!("doorbell[{w}].cv")),
        }
    }
}

/// The epoch engine's rendezvous, transcribed onto the modeled
/// primitives: per-worker doorbells plus one join latch. Op-for-op
/// identical to `EpochGate` (minus the diagnostic counters); the spin
/// budget is a parameter instead of the hardwired `SPIN_LIMIT`.
#[derive(Debug)]
pub struct ModelEpochGate {
    doorbells: Vec<ModelDoorbell>,
    remaining: AtomicUsize,
    join_lock: Mutex<()>,
    join_cv: Condvar,
    stop: AtomicBool,
    spin_limit: u32,
    /// Seeded bug: ring a doorbell *without* taking its mutex. The
    /// notify can then land in the window between a worker's
    /// sequence check (made under the mutex) and its wait — a textbook
    /// lost wakeup, and exactly the bug class the real `ring` documents
    /// its lock against.
    unlocked_ring: bool,
}

impl ModelEpochGate {
    /// A correct gate for `workers` total participants (coordinator
    /// included, as in the original) with the given spin budget.
    pub fn new(workers: usize, spin_limit: u32) -> ModelEpochGate {
        Self::build(workers, spin_limit, false)
    }

    /// The broken variant: doorbell rings skip the doorbell mutex.
    /// Deadlocks (lost wakeup) under one coordinator + one worker ×
    /// one epoch; part of the detector regression corpus
    /// (`tests/broken.rs`).
    pub fn new_broken_unlocked_ring(workers: usize, spin_limit: u32) -> ModelEpochGate {
        Self::build(workers, spin_limit, true)
    }

    fn build(workers: usize, spin_limit: u32, unlocked_ring: bool) -> ModelEpochGate {
        assert!(workers >= 1);
        ModelEpochGate {
            doorbells: (1..workers).map(ModelDoorbell::new).collect(),
            remaining: AtomicUsize::new(0, "gate.remaining"),
            join_lock: Mutex::new((), "gate.join_lock"),
            join_cv: Condvar::new("gate.join_cv"),
            stop: AtomicBool::new(false, "gate.stop"),
            spin_limit,
            unlocked_ring,
        }
    }

    /// Mirror of `EpochGate::open_epoch`: arms the join latch for the
    /// rung workers, then rings their doorbells.
    pub fn open_epoch(&self, active: &[bool]) {
        debug_assert_eq!(active.len(), self.doorbells.len() + 1);
        let rung = active[1..].iter().filter(|&&a| a).count();
        if rung == 0 {
            return;
        }
        self.remaining.store(rung, Ordering::Release);
        for (i, db) in self.doorbells.iter().enumerate() {
            if active[i + 1] {
                self.ring(db);
            }
        }
    }

    fn ring(&self, db: &ModelDoorbell) {
        if self.unlocked_ring {
            // BUG (seeded): the bump-and-notify is not covered by the
            // doorbell mutex, so it can slot between a parking worker's
            // check and its wait.
            db.seq.fetch_add(1, Ordering::Release);
            db.cv.notify_one();
        } else {
            // Bump under the mutex: a worker that checked the sequence
            // and decided to park re-checks under the same mutex, so
            // the notify cannot be lost.
            let _g = db.lock.lock();
            db.seq.fetch_add(1, Ordering::Release);
            db.cv.notify_one();
        }
    }

    /// Mirror of `EpochGate::wait_for_ring`: spin briefly, then park
    /// under the doorbell mutex with a re-check loop. Returns `true`
    /// when the gate has been closed.
    pub fn wait_for_ring(&self, w: usize, last_seen: &mut u64) -> bool {
        let db = &self.doorbells[w - 1];
        let mut spins = 0u32;
        while db.seq.load(Ordering::Acquire) == *last_seen {
            if spins < self.spin_limit {
                spins += 1;
                continue;
            }
            let mut g = db.lock.lock();
            while db.seq.load(Ordering::Acquire) == *last_seen {
                g = db.cv.wait(g);
            }
            drop(g);
            break;
        }
        *last_seen = db.seq.load(Ordering::Acquire);
        self.stop.load(Ordering::Acquire)
    }

    /// Mirror of `EpochGate::arrive`: the rung worker's arrival at the
    /// join latch.
    pub fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.join_lock.lock();
            self.join_cv.notify_one();
        }
    }

    /// Mirror of `EpochGate::join`: the coordinator's wait for every
    /// rung worker (`rung == 0` ⇒ free).
    pub fn join(&self, rung: usize) {
        if rung == 0 {
            return;
        }
        for _ in 0..self.spin_limit {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
        }
        let mut g = self.join_lock.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            g = self.join_cv.wait(g);
        }
        drop(g);
    }

    /// Mirror of `EpochGate::close`: raises the stop flag and rings
    /// every doorbell.
    pub fn close(&self) {
        self.stop.store(true, Ordering::Release);
        for db in &self.doorbells {
            self.ring(db);
        }
    }
}
