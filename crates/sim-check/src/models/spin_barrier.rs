//! Model mirror of `sim_base::shard::SpinBarrier`.

use crate::sync::{AtomicBool, AtomicUsize, Condvar, Mutex};
use std::sync::atomic::Ordering;

/// The sense-reversing centralized barrier, transcribed onto the
/// modeled primitives. Field-for-field and op-for-op identical to
/// `SpinBarrier` (minus the diagnostic counters); the spin budget is a
/// parameter instead of the hardwired `SPIN_LIMIT` so scenarios can
/// cover both the spin-exit and the park-exit paths cheaply.
#[derive(Debug)]
pub struct ModelSpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    spin_limit: u32,
    /// Seeded bug: reset the arrival count *after* releasing the
    /// waiters instead of before. A waiter that starts the next episode
    /// before the late reset lands has its arrival wiped — the barrier
    /// then waits for a participant that already passed, forever.
    late_reset: bool,
}

impl ModelSpinBarrier {
    /// A correct barrier for `n` participants with the given spin
    /// budget (0 ⇒ every waiter parks).
    pub fn new(n: usize, spin_limit: u32) -> ModelSpinBarrier {
        Self::build(n, spin_limit, false)
    }

    /// The broken variant: arrival-count reset moved after the release.
    /// Deadlocks under 2 participants × 2 episodes; part of the
    /// detector regression corpus (`tests/broken.rs`).
    pub fn new_broken_late_reset(n: usize, spin_limit: u32) -> ModelSpinBarrier {
        Self::build(n, spin_limit, true)
    }

    fn build(n: usize, spin_limit: u32, late_reset: bool) -> ModelSpinBarrier {
        assert!(n > 0, "a barrier needs at least one participant");
        ModelSpinBarrier {
            n,
            count: AtomicUsize::new(0, "barrier.count"),
            sense: AtomicBool::new(false, "barrier.sense"),
            lock: Mutex::new((), "barrier.lock"),
            cv: Condvar::new("barrier.cv"),
            spin_limit,
            late_reset,
        }
    }

    /// Mirror of `SpinBarrier::wait`: same orderings, same lock scope,
    /// same spin-then-park structure.
    pub fn wait(&self, local_sense: &mut bool) {
        let sense = !*local_sense;
        *local_sense = sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            if !self.late_reset {
                self.count.store(0, Ordering::Relaxed);
            }
            // The flip happens under the mutex so that a waiter which
            // checked the sense and decided to park cannot lose the
            // wakeup (it re-checks under the same mutex).
            {
                let _g = self.lock.lock();
                self.sense.store(sense, Ordering::Release);
                self.cv.notify_all();
            }
            if self.late_reset {
                // BUG (seeded): by now a released waiter may already
                // have arrived for the next episode; this store erases
                // that arrival.
                self.count.store(0, Ordering::Relaxed);
            }
        } else {
            for _ in 0..self.spin_limit {
                if self.sense.load(Ordering::Acquire) == sense {
                    return;
                }
            }
            let mut g = self.lock.lock();
            while self.sense.load(Ordering::Acquire) != sense {
                g = self.cv.wait(g);
            }
            drop(g);
        }
    }
}
