//! Model mirrors of the sharded engines' phase protocols.
//!
//! These transcribe the *synchronization skeleton* of
//! `sim-cmp::par` — who writes what, between which rendezvous — onto
//! the modeled primitives, with the machine state abstracted to labeled
//! [`RaceCell`]s:
//!
//! * the `Ptrs`/`EpochPtrs` snapshot becomes one cell, written by the
//!   coordinator while every worker is parked and read by workers
//!   inside their phase;
//! * each tile's shard-local state (core + L1 lane) becomes one cell,
//!   written only by the shard that owns it during compute/free-run and
//!   read by the coordinator during exchange/apply (the `mem.tick`
//!   analog);
//! * each worker's `WorkerOut` slot becomes one cell carrying the
//!   shard's latched write *sequence*, drained by the coordinator in
//!   ascending worker order.
//!
//! Because every cell access is race-checked against the vector clocks
//! induced by the barrier/gate, a missing happens-before edge anywhere
//! in the protocol fails the exploration. The latch sequences make the
//! *linearization* claim checkable: concatenating the per-worker
//! sequences in ascending worker order must reproduce the serial
//! engine's ascending-tile order exactly (shards are contiguous and
//! ascending, so any wrong merge order or lost/duplicated latch entry
//! breaks the equality).

// The `for t in lo..hi` range loops below transcribe the real worker
// loops' shard sweeps verbatim; rewriting them as iterator chains would
// cost the line-by-line correspondence the mirrors exist for.
#![allow(clippy::needless_range_loop)]

use crate::models::{ModelEpochGate, ModelSpinBarrier};
use crate::sync::{spawn, AtomicBool, RaceCell};
use sim_base::shard::shard_ranges;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Upper bound on tiles per scenario (latch sequences are fixed-size
/// `Copy` arrays so they can live in a [`RaceCell`]).
const MAX_TILES: usize = 8;

/// A shard's latched write sequence: values in shard program order.
type Latch = ([u64; MAX_TILES], usize);

/// What one tile's model state holds after a shard pass over cycle (or
/// epoch) `now`: distinct per (now, tile) so stale or misrouted writes
/// are distinguishable from correct ones.
fn tile_value(now: u64, tile: usize) -> u64 {
    now * 100 + tile as u64 + 1
}

/// Runs the per-cycle compute/exchange protocol of
/// `System::run_with_workers` + `worker_loop` under the explorer:
/// `workers` participants (the calling model thread is the
/// coordinator/shard 0, as in the real engine), `tiles` tiles
/// partitioned by the real `shard_ranges`, `cycles` simulated cycles.
///
/// Must be called inside [`Explorer::check`](crate::Explorer::check).
/// Asserts, every cycle: the merged latch sequence equals the serial
/// ascending-tile order, and every tile holds its expected value when
/// the coordinator reads it during the exchange.
pub fn run_cycle_protocol(
    workers: usize,
    tiles: usize,
    cycles: u64,
    spin_limit: u32,
    broken_barrier: bool,
) {
    assert!(workers >= 1 && tiles <= MAX_TILES && tiles >= workers);
    let shards = shard_ranges(tiles, workers);
    let barrier = Arc::new(if broken_barrier {
        ModelSpinBarrier::new_broken_late_reset(workers, spin_limit)
    } else {
        ModelSpinBarrier::new(workers, spin_limit)
    });
    let stop = Arc::new(AtomicBool::new(false, "ctx.stop"));
    let ptrs = Arc::new(RaceCell::new(0u64, "ctx.ptrs"));
    let lanes: Arc<Vec<RaceCell<u64>>> = Arc::new(
        (0..tiles)
            .map(|t| RaceCell::new(0u64, &format!("lane[{t}]")))
            .collect(),
    );
    let outs: Arc<Vec<RaceCell<Latch>>> = Arc::new(
        (0..workers)
            .map(|w| RaceCell::new(([0; MAX_TILES], 0), &format!("out[{w}]")))
            .collect(),
    );

    // Mirror of `shard_phase`, abstracted: step every owned tile
    // against the frozen snapshot, latching in shard program order.
    let compute = |w: usize,
                   lo: usize,
                   hi: usize,
                   lanes: &[RaceCell<u64>],
                   outs: &[RaceCell<Latch>],
                   ptrs: &RaceCell<u64>| {
        let now = ptrs.get();
        let mut latch: Latch = ([0; MAX_TILES], 0);
        for t in lo..hi {
            let v = tile_value(now, t);
            lanes[t].set(v);
            latch.0[latch.1] = v;
            latch.1 += 1;
        }
        outs[w].set(latch);
    };

    // Mirror of `worker_loop`: park at the release barrier, check the
    // stop flag, compute the shard, park at the join barrier.
    let handles: Vec<_> = (1..workers)
        .map(|w| {
            let (barrier, stop, ptrs) = (barrier.clone(), stop.clone(), ptrs.clone());
            let (lanes, outs) = (lanes.clone(), outs.clone());
            let (lo, hi) = shards[w];
            spawn(&format!("worker{w}"), move || {
                let mut sense = false;
                loop {
                    barrier.wait(&mut sense);
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    compute(w, lo, hi, &lanes, &outs, &ptrs);
                    barrier.wait(&mut sense);
                }
            })
        })
        .collect();

    // Mirror of the coordinator loop in `run_with_workers`.
    let mut sense = false;
    for now in 1..=cycles {
        // Refresh the snapshot while every worker is parked at the
        // release barrier (before the first cycle: parked at their
        // first wait; later: parked since the previous join).
        ptrs.set(now);
        barrier.wait(&mut sense); // release
        let (lo, hi) = shards[0];
        compute(0, lo, hi, &lanes, &outs, &ptrs);
        barrier.wait(&mut sense); // join
                                  // Exchange: drain worker outputs in ascending worker order —
                                  // the real engine's merge order — and compare against the
                                  // serial engine's ascending-tile order.
        let mut merged: Vec<u64> = Vec::new();
        for out in outs.iter() {
            let (vals, len) = out.get();
            merged.extend_from_slice(&vals[..len]);
        }
        let serial: Vec<u64> = (0..tiles).map(|t| tile_value(now, t)).collect();
        assert_eq!(merged, serial, "exchange merge diverged from serial order");
        // The shared-state advance (`mem.tick` analog): the coordinator
        // touches every tile — legal only because the join barrier
        // ordered it after all compute writes.
        for (t, lane) in lanes.iter().enumerate() {
            assert_eq!(lane.get(), tile_value(now, t));
        }
    }
    stop.store(true, Ordering::Release);
    barrier.wait(&mut sense); // final release: workers observe stop
    for h in handles {
        h.join();
    }
}

/// One unrolled cycle of the compute/exchange protocol: release
/// barrier → shard compute → join barrier → exchange, without the
/// worker loop's stop-flag crossing. Everything the steady-state cycle
/// shares is here (snapshot publication, disjoint lane writes, latch
/// merge, the coordinator's full-machine sweep); what is *not* covered
/// — loop reuse of the barrier and the stop protocol — is checked
/// exhaustively at 2 workers by [`run_cycle_protocol`] and at 2–4
/// participants by the bare-primitive suites. The split exists because
/// a third barrier crossing at 3+ workers pushes the exhaustive state
/// space out of reach (`DESIGN.md` §14).
///
/// Must be called inside [`Explorer::check`](crate::Explorer::check).
pub fn run_cycle_protocol_once(workers: usize, tiles: usize, spin_limit: u32) {
    assert!(workers >= 1 && tiles <= MAX_TILES && tiles >= workers);
    let shards = shard_ranges(tiles, workers);
    let barrier = Arc::new(ModelSpinBarrier::new(workers, spin_limit));
    let ptrs = Arc::new(RaceCell::new(0u64, "ctx.ptrs"));
    let lanes: Arc<Vec<RaceCell<u64>>> = Arc::new(
        (0..tiles)
            .map(|t| RaceCell::new(0u64, &format!("lane[{t}]")))
            .collect(),
    );
    let outs: Arc<Vec<RaceCell<Latch>>> = Arc::new(
        (0..workers)
            .map(|w| RaceCell::new(([0; MAX_TILES], 0), &format!("out[{w}]")))
            .collect(),
    );
    let compute = |w: usize,
                   lo: usize,
                   hi: usize,
                   lanes: &[RaceCell<u64>],
                   outs: &[RaceCell<Latch>],
                   ptrs: &RaceCell<u64>| {
        let now = ptrs.get();
        let mut latch: Latch = ([0; MAX_TILES], 0);
        for t in lo..hi {
            let v = tile_value(now, t);
            lanes[t].set(v);
            latch.0[latch.1] = v;
            latch.1 += 1;
        }
        outs[w].set(latch);
    };
    let handles: Vec<_> = (1..workers)
        .map(|w| {
            let (barrier, ptrs) = (barrier.clone(), ptrs.clone());
            let (lanes, outs) = (lanes.clone(), outs.clone());
            let (lo, hi) = shards[w];
            spawn(&format!("worker{w}"), move || {
                let mut sense = false;
                barrier.wait(&mut sense);
                compute(w, lo, hi, &lanes, &outs, &ptrs);
                barrier.wait(&mut sense);
            })
        })
        .collect();
    let mut sense = false;
    ptrs.set(1);
    barrier.wait(&mut sense); // release
    let (lo, hi) = shards[0];
    compute(0, lo, hi, &lanes, &outs, &ptrs);
    barrier.wait(&mut sense); // join
    let mut merged: Vec<u64> = Vec::new();
    for out in outs.iter() {
        let (vals, len) = out.get();
        merged.extend_from_slice(&vals[..len]);
    }
    let serial: Vec<u64> = (0..tiles).map(|t| tile_value(1, t)).collect();
    assert_eq!(merged, serial, "exchange merge diverged from serial order");
    for (t, lane) in lanes.iter().enumerate() {
        assert_eq!(lane.get(), tile_value(1, t));
    }
    for h in handles {
        h.join();
    }
}

/// Runs the epoch free-run/apply protocol of `run_epochs_parallel` +
/// `epoch_worker_loop` under the explorer: `workers` participants (the
/// calling model thread is the coordinator/shard 0), `tiles` tiles,
/// one epoch per entry of `schedule` — entry `e` lists which workers
/// (index ≥ 1; index 0 is ignored, as in `EpochGate::open_epoch`) are
/// rung for that epoch.
///
/// Must be called inside [`Explorer::check`](crate::Explorer::check).
/// Asserts, every epoch: rung shards' latch sequences merge (ascending
/// worker order) to the serial ascending-tile order over participating
/// tiles; every participating tile holds its epoch value at apply time;
/// and **no tile of an un-rung worker moved** — together with race
/// detection this is the "parked workers stay parked" claim.
pub fn run_epoch_protocol(
    workers: usize,
    tiles: usize,
    schedule: &[Vec<bool>],
    spin_limit: u32,
    broken_ring: bool,
) {
    assert!(workers >= 1 && tiles <= MAX_TILES && tiles >= workers);
    let shards = shard_ranges(tiles, workers);
    let gate = Arc::new(if broken_ring {
        ModelEpochGate::new_broken_unlocked_ring(workers, spin_limit)
    } else {
        ModelEpochGate::new(workers, spin_limit)
    });
    let ptrs = Arc::new(RaceCell::new(0u64, "ctx.ptrs"));
    let cells: Arc<Vec<RaceCell<u64>>> = Arc::new(
        (0..tiles)
            .map(|t| RaceCell::new(0u64, &format!("tile[{t}]")))
            .collect(),
    );
    let outs: Arc<Vec<RaceCell<Latch>>> = Arc::new(
        (0..workers)
            .map(|w| RaceCell::new(([0; MAX_TILES], 0), &format!("out[{w}]")))
            .collect(),
    );

    // Mirror of `epoch_shard_phase`, abstracted: free-run every owned
    // tile over the posted window, latching in shard program order.
    let free_run = |w: usize,
                    lo: usize,
                    hi: usize,
                    cells: &[RaceCell<u64>],
                    outs: &[RaceCell<Latch>],
                    ptrs: &RaceCell<u64>| {
        let ep = ptrs.get();
        let mut latch: Latch = ([0; MAX_TILES], 0);
        for t in lo..hi {
            let v = tile_value(ep, t);
            cells[t].set(v);
            latch.0[latch.1] = v;
            latch.1 += 1;
        }
        outs[w].set(latch);
    };

    // Mirror of `epoch_worker_loop`: park on the doorbell, free-run,
    // arrive at the join latch.
    let handles: Vec<_> = (1..workers)
        .map(|w| {
            let (gate, ptrs) = (gate.clone(), ptrs.clone());
            let (cells, outs) = (cells.clone(), outs.clone());
            let (lo, hi) = shards[w];
            spawn(&format!("worker{w}"), move || {
                let mut seen = 0u64;
                loop {
                    if gate.wait_for_ring(w, &mut seen) {
                        return;
                    }
                    free_run(w, lo, hi, &cells, &outs, &ptrs);
                    gate.arrive();
                }
            })
        })
        .collect();

    // Mirror of the coordinator loop in `run_epochs_parallel`.
    let mut expect: Vec<u64> = vec![0; tiles];
    for (e, active) in schedule.iter().enumerate() {
        assert_eq!(active.len(), workers);
        assert!(!active[0], "active[0] is the coordinator; never rung");
        let ep = e as u64 + 1;
        let rung = active[1..].iter().filter(|&&a| a).count();
        // Publish the epoch snapshot while every worker is parked
        // (before its first ring / since its last arrive), then open.
        ptrs.set(ep);
        gate.open_epoch(active);
        // The coordinator free-runs its own shard inline.
        let (lo, hi) = shards[0];
        free_run(0, lo, hi, &cells, &outs, &ptrs);
        gate.join(rung);
        // Apply: merge rung shards ascending (coordinator first), as
        // the real drain does, and compare with the serial order over
        // exactly the participating tiles.
        let mut merged: Vec<u64> = Vec::new();
        let mut serial: Vec<u64> = Vec::new();
        for w in 0..workers {
            if w == 0 || active[w] {
                let (vals, len) = outs[w].get();
                merged.extend_from_slice(&vals[..len]);
                let (lo, hi) = shards[w];
                for t in lo..hi {
                    serial.push(tile_value(ep, t));
                    expect[t] = tile_value(ep, t);
                }
            }
        }
        assert_eq!(merged, serial, "apply merge diverged from serial order");
        // Every tile — participating or not — holds exactly its
        // expected value; un-rung shards must not have moved.
        for (t, cell) in cells.iter().enumerate() {
            assert_eq!(cell.get(), expect[t], "tile {t} after epoch {ep}");
        }
    }
    gate.close();
    for h in handles {
        h.join();
    }
}
