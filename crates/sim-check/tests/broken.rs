//! Regression corpus for the checker itself: two deliberately seeded
//! bugs — each a real-world bug class in the primitive it mirrors —
//! that the explorer **must** detect. If a refactor of the scheduler,
//! the sleep sets, or the modeled primitives ever stops finding these,
//! this suite fails and the checker can no longer be trusted.
//!
//! * `ModelSpinBarrier::new_broken_late_reset` — the arrival-count
//!   reset moved after the waiter release. A participant that starts
//!   the next episode before the late reset lands has its arrival
//!   wiped; the barrier then waits forever. Surfaces as a deadlock.
//! * `ModelEpochGate::new_broken_unlocked_ring` — the doorbell bump and
//!   notify without the doorbell mutex. The notify can land between a
//!   parking worker's sequence check and its wait: a textbook lost
//!   wakeup. Also surfaces as a deadlock.
//!
//! Both are checked twice: directly on the primitive (the minimal
//! scenario that exposes them) and through the full phase-protocol
//! mirrors, proving the protocol scenarios would catch a regression in
//! the underlying primitive too.

use sim_check::models::{run_cycle_protocol, run_epoch_protocol, ModelEpochGate, ModelSpinBarrier};
use sim_check::sync::spawn;
use sim_check::{Explorer, Report, ViolationKind};
use std::sync::Arc;

/// The violation must exist, be a deadlock, and carry a non-empty
/// schedule trace (the repro the checker hands to a human).
fn expect_deadlock(r: &Report, what: &str) {
    let v = r.violation.as_ref().unwrap_or_else(|| {
        panic!(
            "{what}: seeded bug not detected ({} executions)",
            r.executions
        )
    });
    assert_eq!(
        v.kind,
        ViolationKind::Deadlock,
        "{what}: expected a deadlock, got {v:?}"
    );
    assert!(
        !v.trace.is_empty(),
        "{what}: violation carries no repro trace"
    );
}

#[test]
fn broken_barrier_late_reset_deadlocks() {
    // Two participants, two episodes, nothing else: the minimal
    // scenario. The deadlock needs a second episode — the wiped arrival
    // only matters once somebody arrives again.
    let r = Explorer::default().check(|| {
        let barrier = Arc::new(ModelSpinBarrier::new_broken_late_reset(2, 0));
        let b = barrier.clone();
        let h = spawn("p1", move || {
            let mut sense = false;
            for _ in 0..2 {
                b.wait(&mut sense);
            }
        });
        let mut sense = false;
        for _ in 0..2 {
            barrier.wait(&mut sense);
        }
        h.join();
    });
    expect_deadlock(&r, "broken barrier (direct)");
    eprintln!(
        "broken barrier direct: caught after {} executions",
        r.executions
    );
}

#[test]
fn broken_barrier_detected_through_cycle_protocol() {
    // The same bug injected under the full compute/exchange phase
    // protocol: one cycle already crosses the barrier three times
    // (release, join, stop-release), which is enough episodes to
    // trigger the wipe.
    let r = Explorer::default().check(|| run_cycle_protocol(2, 2, 1, 0, true));
    expect_deadlock(&r, "broken barrier (cycle protocol)");
    eprintln!(
        "broken barrier via protocol: caught after {} executions",
        r.executions
    );
}

#[test]
fn broken_gate_unlocked_ring_loses_wakeup() {
    // Coordinator + one worker, one epoch, spin budget 0 (the worker
    // always parks — the lost notify has maximal opportunity).
    let r = Explorer::default().check(|| {
        let gate = Arc::new(ModelEpochGate::new_broken_unlocked_ring(2, 0));
        let g = gate.clone();
        let h = spawn("w1", move || {
            let mut seen = 0u64;
            loop {
                if g.wait_for_ring(1, &mut seen) {
                    return;
                }
                g.arrive();
            }
        });
        gate.open_epoch(&[false, true]);
        gate.join(1);
        gate.close();
        h.join();
    });
    expect_deadlock(&r, "broken gate (direct)");
    eprintln!(
        "broken gate direct: caught after {} executions",
        r.executions
    );
}

#[test]
fn broken_gate_detected_through_epoch_protocol() {
    // The same bug under the full free-run/apply protocol: one rung
    // worker, one epoch.
    let r = Explorer::default().check(|| run_epoch_protocol(2, 2, &[vec![false, true]], 0, true));
    expect_deadlock(&r, "broken gate (epoch protocol)");
    eprintln!(
        "broken gate via protocol: caught after {} executions",
        r.executions
    );
}
