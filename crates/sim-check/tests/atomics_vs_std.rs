//! Property tests pinning the modeled atomics to `std::sync::atomic`
//! on single-threaded schedules.
//!
//! On one thread there is exactly one schedule, so the model's only
//! defensible behavior is *bit-for-bit agreement with std*: same return
//! value from every operation, same final value, for every valid
//! ordering. Each case replays one random operation sequence against a
//! modeled atomic (inside the explorer, which must report exactly one
//! execution) and a std atomic side by side.
//!
//! Orderings are drawn from the valid sets only — std panics on
//! `load(Release)` / `store(Acquire)` and so would the comparison.

use sim_base::check::forall;
use sim_base::rng::SplitMix64;
use sim_check::sync::{AtomicBool, AtomicU64, AtomicUsize};
use sim_check::Explorer;
use std::sync::atomic::Ordering;

const LOAD_ORDS: [Ordering; 3] = [Ordering::Relaxed, Ordering::Acquire, Ordering::SeqCst];
const STORE_ORDS: [Ordering; 3] = [Ordering::Relaxed, Ordering::Release, Ordering::SeqCst];
const RMW_ORDS: [Ordering; 5] = [
    Ordering::Relaxed,
    Ordering::Acquire,
    Ordering::Release,
    Ordering::AcqRel,
    Ordering::SeqCst,
];

fn pick<T: Copy>(rng: &mut SplitMix64, xs: &[T]) -> T {
    xs[rng.next_below(xs.len() as u64) as usize]
}

#[derive(Clone, Copy, Debug)]
enum OpU64 {
    Load(Ordering),
    Store(u64, Ordering),
    FetchAdd(u64, Ordering),
    FetchSub(u64, Ordering),
    Swap(u64, Ordering),
}

#[test]
fn modeled_u64_matches_std_on_serial_schedules() {
    forall("atomics-vs-std/u64", |rng| {
        let init = rng.next_u64();
        let plan: Vec<OpU64> = (0..16)
            .map(|_| match rng.next_below(5) {
                0 => OpU64::Load(pick(rng, &LOAD_ORDS)),
                1 => OpU64::Store(rng.next_u64(), pick(rng, &STORE_ORDS)),
                2 => OpU64::FetchAdd(rng.next_u64(), pick(rng, &RMW_ORDS)),
                3 => OpU64::FetchSub(rng.next_u64(), pick(rng, &RMW_ORDS)),
                _ => OpU64::Swap(rng.next_u64(), pick(rng, &RMW_ORDS)),
            })
            .collect();
        let r = Explorer::default().check(move || {
            let model = AtomicU64::new(init, "model");
            let std = std::sync::atomic::AtomicU64::new(init);
            for (i, op) in plan.iter().enumerate() {
                match *op {
                    OpU64::Load(o) => assert_eq!(model.load(o), std.load(o), "op {i}: {op:?}"),
                    OpU64::Store(v, o) => {
                        model.store(v, o);
                        std.store(v, o);
                    }
                    OpU64::FetchAdd(v, o) => {
                        assert_eq!(model.fetch_add(v, o), std.fetch_add(v, o), "op {i}: {op:?}");
                    }
                    OpU64::FetchSub(v, o) => {
                        assert_eq!(model.fetch_sub(v, o), std.fetch_sub(v, o), "op {i}: {op:?}");
                    }
                    OpU64::Swap(v, o) => {
                        assert_eq!(model.swap(v, o), std.swap(v, o), "op {i}: {op:?}");
                    }
                }
            }
            assert_eq!(
                model.load(Ordering::SeqCst),
                std.load(Ordering::SeqCst),
                "final values diverged"
            );
        });
        r.assert_ok();
        assert_eq!(r.executions, 1, "one thread must mean one schedule");
    });
}

#[derive(Clone, Copy, Debug)]
enum OpUsize {
    Load(Ordering),
    Store(usize, Ordering),
    FetchAdd(usize, Ordering),
    FetchSub(usize, Ordering),
}

#[test]
fn modeled_usize_matches_std_on_serial_schedules() {
    forall("atomics-vs-std/usize", |rng| {
        let init = rng.next_u64() as usize;
        let plan: Vec<OpUsize> = (0..16)
            .map(|_| match rng.next_below(4) {
                0 => OpUsize::Load(pick(rng, &LOAD_ORDS)),
                1 => OpUsize::Store(rng.next_u64() as usize, pick(rng, &STORE_ORDS)),
                2 => OpUsize::FetchAdd(rng.next_u64() as usize, pick(rng, &RMW_ORDS)),
                _ => OpUsize::FetchSub(rng.next_u64() as usize, pick(rng, &RMW_ORDS)),
            })
            .collect();
        let r = Explorer::default().check(move || {
            let model = AtomicUsize::new(init, "model");
            let std = std::sync::atomic::AtomicUsize::new(init);
            for (i, op) in plan.iter().enumerate() {
                match *op {
                    OpUsize::Load(o) => assert_eq!(model.load(o), std.load(o), "op {i}: {op:?}"),
                    OpUsize::Store(v, o) => {
                        model.store(v, o);
                        std.store(v, o);
                    }
                    OpUsize::FetchAdd(v, o) => {
                        assert_eq!(model.fetch_add(v, o), std.fetch_add(v, o), "op {i}: {op:?}");
                    }
                    OpUsize::FetchSub(v, o) => {
                        assert_eq!(model.fetch_sub(v, o), std.fetch_sub(v, o), "op {i}: {op:?}");
                    }
                }
            }
            assert_eq!(
                model.load(Ordering::SeqCst),
                std.load(Ordering::SeqCst),
                "final values diverged"
            );
        });
        r.assert_ok();
        assert_eq!(r.executions, 1, "one thread must mean one schedule");
    });
}

#[derive(Clone, Copy, Debug)]
enum OpBool {
    Load(Ordering),
    Store(bool, Ordering),
}

#[test]
fn modeled_bool_matches_std_on_serial_schedules() {
    forall("atomics-vs-std/bool", |rng| {
        let init = rng.chance(0.5);
        let plan: Vec<OpBool> = (0..16)
            .map(|_| {
                if rng.chance(0.5) {
                    OpBool::Load(pick(rng, &LOAD_ORDS))
                } else {
                    OpBool::Store(rng.chance(0.5), pick(rng, &STORE_ORDS))
                }
            })
            .collect();
        let r = Explorer::default().check(move || {
            let model = AtomicBool::new(init, "model");
            let std = std::sync::atomic::AtomicBool::new(init);
            for (i, op) in plan.iter().enumerate() {
                match *op {
                    OpBool::Load(o) => assert_eq!(model.load(o), std.load(o), "op {i}: {op:?}"),
                    OpBool::Store(v, o) => {
                        model.store(v, o);
                        std.store(v, o);
                    }
                }
            }
            assert_eq!(
                model.load(Ordering::SeqCst),
                std.load(Ordering::SeqCst),
                "final values diverged"
            );
        });
        r.assert_ok();
        assert_eq!(r.executions, 1, "one thread must mean one schedule");
    });
}
