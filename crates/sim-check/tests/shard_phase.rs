//! Model checking of the sharded engines' phase protocols
//! (`sim-cmp::par`, via the skeleton mirrors in
//! `sim_check::models::{run_cycle_protocol, run_epoch_protocol}`).
//!
//! Verified per interleaving: no data race on tile-disjoint lanes or
//! the coordinator's snapshot/merge accesses, no lost doorbell wakeup
//! (it would deadlock), and the exchange/apply merge reproducing the
//! serial engine's ascending-tile order exactly.
//!
//! Exploration is exhaustive at 2–3 workers. At 4 workers the
//! unreduced protocol (three barrier crossings per cycle plus the cell
//! traffic) is beyond exhaustive reach, so the 4-worker runs use a
//! CHESS-style preemption bound of 2 — the empirical sweet spot for
//! synchronization bugs — while the *primitives* stay exhaustively
//! checked at 4 participants in `tests/primitives.rs`; see
//! `DESIGN.md` §14 for the coverage argument.

use sim_check::models::{run_cycle_protocol, run_cycle_protocol_once, run_epoch_protocol};
use sim_check::Explorer;

fn bounded(preemptions: u32) -> Explorer {
    Explorer {
        preemption_bound: Some(preemptions),
        ..Explorer::default()
    }
}

#[test]
fn cycle_protocol_2_workers_2_cycles() {
    let r = Explorer::default().check(|| run_cycle_protocol(2, 2, 2, 0, false));
    r.assert_ok();
    eprintln!(
        "cycle 2w x2c: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn cycle_protocol_2_workers_spin_budget() {
    // Spin budget 1 covers the barrier's spin-exit fast path inside the
    // full protocol as well.
    let r = Explorer::default().check(|| run_cycle_protocol(2, 2, 1, 1, false));
    r.assert_ok();
}

#[test]
fn cycle_protocol_3_workers_unrolled() {
    // One full release→compute→join→exchange cycle, exhaustively (the
    // stop crossing is covered at 2 workers and by the primitives).
    let r = Explorer::default().check(|| run_cycle_protocol_once(3, 3, 0));
    r.assert_ok();
    eprintln!(
        "cycle 3w once: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn cycle_protocol_3_workers_full_bounded() {
    let r = bounded(2).check(|| run_cycle_protocol(3, 3, 1, 0, false));
    assert!(r.violation.is_none(), "violation: {:?}", r.violation);
    eprintln!(
        "cycle 3w full (bound 2): {} executions, bound_hit={}",
        r.executions, r.bound_hit
    );
}

#[test]
fn cycle_protocol_4_workers_bounded() {
    let r = bounded(2).check(|| run_cycle_protocol_once(4, 4, 0));
    assert!(r.violation.is_none(), "violation: {:?}", r.violation);
    eprintln!(
        "cycle 4w once (bound 2): {} executions, {} pruned, bound_hit={}",
        r.executions, r.pruned, r.bound_hit
    );
}

#[test]
fn epoch_protocol_2_workers_rotating() {
    // Epoch 1 rings the worker, epoch 2 is all-idle (free), epoch 3
    // rings it again — covers ring/arrive/join, the free path, and
    // doorbell reuse across epochs.
    let r = Explorer::default().check(|| {
        run_epoch_protocol(
            2,
            2,
            &[vec![false, true], vec![false, false], vec![false, true]],
            0,
            false,
        )
    });
    r.assert_ok();
    eprintln!(
        "epoch 2w x3e: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn epoch_protocol_3_workers_alternating() {
    // Worker 1 rung in epoch 1, worker 2 in epoch 2: each epoch one
    // shard free-runs while the other must stay parked and untouched.
    let r = Explorer::default().check(|| {
        run_epoch_protocol(
            3,
            3,
            &[vec![false, true, false], vec![false, false, true]],
            0,
            false,
        )
    });
    r.assert_ok();
    eprintln!(
        "epoch 3w x2e: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn epoch_protocol_4_workers_bounded() {
    // All three workers rung at once — the maximal-rendezvous epoch.
    let r =
        bounded(2).check(|| run_epoch_protocol(4, 4, &[vec![false, true, true, true]], 0, false));
    assert!(r.violation.is_none(), "violation: {:?}", r.violation);
    eprintln!(
        "epoch 4w x1e (bound 2): {} executions, {} pruned, bound_hit={}",
        r.executions, r.pruned, r.bound_hit
    );
}

#[test]
#[ignore = "exhaustive 4-worker epoch protocol: 2,460,412 executions, several minutes"]
fn epoch_protocol_4_workers_exhaustive() {
    // The unbounded counterpart of `epoch_protocol_4_workers_bounded`.
    // Last measured (release mode): 2,460,412 executions, complete=true,
    // zero violations. Run on demand with
    // `cargo test -p sim-check --release -- --ignored`.
    let r = Explorer::default()
        .check(|| run_epoch_protocol(4, 4, &[vec![false, true, true, true]], 0, false));
    r.assert_ok();
    assert!(r.complete, "expected exhaustive exploration");
    eprintln!(
        "epoch 4w x1e exhaustive: {} executions, {} pruned",
        r.executions, r.pruned
    );
}
