//! Exhaustive model checking of the real sharding primitives
//! (`sim_base::shard::{SpinBarrier, EpochGate}`, via their op-for-op
//! mirrors in `sim_check::models`): every interleaving at 2–4
//! participants, zero violations required.
//!
//! The properties:
//!
//! * the barrier provides **all-to-all happens-before** — every
//!   participant's pre-wait writes are readable race-free by every
//!   participant post-wait;
//! * the barrier is **immediately reusable** (sense reversal): episodes
//!   back-to-back on the same barrier never deadlock;
//! * the gate's doorbell protocol **never loses a wakeup** — a rung
//!   worker always gets through (a lost wakeup would surface as a
//!   deadlock in some interleaving, as `tests/broken.rs` demonstrates
//!   on the seeded-broken variant);
//! * un-rung workers **stay parked** and `close` wakes everyone.

use sim_check::models::{ModelEpochGate, ModelSpinBarrier};
use sim_check::sync::{spawn, AtomicU64, RaceCell};
use sim_check::Explorer;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// `n` participants, `episodes` write/read rounds: each thread writes
/// its own cell, crosses the barrier, then reads *every* cell — the
/// strongest happens-before claim the barrier makes.
fn barrier_all_to_all(n: usize, episodes: u64, spin_limit: u32) {
    let barrier = Arc::new(ModelSpinBarrier::new(n, spin_limit));
    let cells: Arc<Vec<RaceCell<u64>>> = Arc::new(
        (0..n)
            .map(|i| RaceCell::new(0, &format!("cell[{i}]")))
            .collect(),
    );
    let body = move |i: usize, barrier: Arc<ModelSpinBarrier>, cells: Arc<Vec<RaceCell<u64>>>| {
        let mut sense = false;
        for ep in 1..=episodes {
            cells[i].set(ep);
            barrier.wait(&mut sense);
            for (j, c) in cells.iter().enumerate() {
                assert_eq!(c.get(), ep, "thread {i} read stale cell {j}");
            }
            barrier.wait(&mut sense);
        }
    };
    let handles: Vec<_> = (1..n)
        .map(|i| {
            let (b, c, f) = (barrier.clone(), cells.clone(), body);
            spawn(&format!("p{i}"), move || f(i, b, c))
        })
        .collect();
    body(0, barrier, cells);
    for h in handles {
        h.join();
    }
}

#[test]
fn barrier_all_to_all_hb_2x2() {
    let r = Explorer::default().check(|| barrier_all_to_all(2, 2, 0));
    r.assert_ok();
    eprintln!(
        "barrier 2x2: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn barrier_all_to_all_hb_2x1_with_spin_budget() {
    // spin budget 1 covers the spin-exit fast path as well as parking.
    let r = Explorer::default().check(|| barrier_all_to_all(2, 1, 1));
    r.assert_ok();
}

#[test]
fn barrier_all_to_all_hb_3x1() {
    let r = Explorer::default().check(|| barrier_all_to_all(3, 1, 0));
    r.assert_ok();
    eprintln!(
        "barrier 3x1: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn barrier_neighbor_hb_4x1() {
    // Four participants, one crossing: each writes its own cell before
    // the barrier and reads its neighbor's after. Same happens-before
    // claim as the all-to-all variant, pairwise instead of quadratic,
    // which keeps a 4-way exhaustive exploration tractable.
    let r = Explorer::default().check(|| {
        let n = 4;
        let barrier = Arc::new(ModelSpinBarrier::new(n, 0));
        let cells: Arc<Vec<RaceCell<u64>>> = Arc::new(
            (0..n)
                .map(|i| RaceCell::new(0, &format!("cell[{i}]")))
                .collect(),
        );
        let body =
            move |i: usize, barrier: Arc<ModelSpinBarrier>, cells: Arc<Vec<RaceCell<u64>>>| {
                let mut sense = false;
                cells[i].set(i as u64 + 1);
                barrier.wait(&mut sense);
                let j = (i + 1) % cells.len();
                assert_eq!(
                    cells[j].get(),
                    j as u64 + 1,
                    "thread {i} read stale cell {j}"
                );
            };
        let handles: Vec<_> = (1..n)
            .map(|i| {
                let (b, c, f) = (barrier.clone(), cells.clone(), body);
                spawn(&format!("p{i}"), move || f(i, b, c))
            })
            .collect();
        body(0, barrier, cells);
        for h in handles {
            h.join();
        }
    });
    r.assert_ok();
    eprintln!(
        "barrier 4x1: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn barrier_reusable_back_to_back() {
    // One barrier crossing per episode with nothing between: the pure
    // sense-reversal reuse claim (a non-reusable barrier deadlocks).
    let r = Explorer::default().check(|| {
        let n = 2;
        let episodes = 3u64;
        let barrier = Arc::new(ModelSpinBarrier::new(n, 0));
        let hits = Arc::new(AtomicU64::new(0, "hits"));
        let (b, h) = (barrier.clone(), hits.clone());
        let handle = spawn("p1", move || {
            let mut sense = false;
            for _ in 0..episodes {
                h.fetch_add(1, Ordering::AcqRel);
                b.wait(&mut sense);
            }
        });
        let mut sense = false;
        for _ in 0..episodes {
            hits.fetch_add(1, Ordering::AcqRel);
            barrier.wait(&mut sense);
        }
        handle.join();
        assert_eq!(hits.load(Ordering::Acquire), 2 * episodes);
    });
    r.assert_ok();
}

#[test]
fn gate_rung_worker_always_passes() {
    // Coordinator + 1 worker, 2 epochs: the worker is rung each epoch,
    // writes its cell, arrives; the coordinator joins then reads the
    // cell. No interleaving may lose the ring or race the read.
    let r = Explorer::default().check(|| {
        let gate = Arc::new(ModelEpochGate::new(2, 0));
        let cell = Arc::new(RaceCell::new(0u64, "shard1"));
        let (g, c) = (gate.clone(), cell.clone());
        let h = spawn("w1", move || {
            let mut seen = 0u64;
            loop {
                if g.wait_for_ring(1, &mut seen) {
                    return;
                }
                c.set(c.get() + 1);
                g.arrive();
            }
        });
        for ep in 1..=2u64 {
            gate.open_epoch(&[false, true]);
            gate.join(1);
            assert_eq!(cell.get(), ep, "worker missed epoch {ep}");
        }
        gate.close();
        h.join();
    });
    r.assert_ok();
    eprintln!(
        "gate 2p x2ep: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn gate_unrung_worker_stays_parked() {
    // Coordinator + 2 workers; only worker 1 is ever rung. Worker 2's
    // cell must never move, and `close` must still wake it.
    let r = Explorer::default().check(|| {
        let gate = Arc::new(ModelEpochGate::new(3, 0));
        let cells: Arc<Vec<RaceCell<u64>>> =
            Arc::new(vec![RaceCell::new(0, "shard1"), RaceCell::new(0, "shard2")]);
        let handles: Vec<_> = (1..3)
            .map(|w| {
                let (g, c) = (gate.clone(), cells.clone());
                spawn(&format!("w{w}"), move || {
                    let mut seen = 0u64;
                    loop {
                        if g.wait_for_ring(w, &mut seen) {
                            return;
                        }
                        c[w - 1].set(c[w - 1].get() + 1);
                        g.arrive();
                    }
                })
            })
            .collect();
        gate.open_epoch(&[false, true, false]);
        gate.join(1);
        assert_eq!(cells[0].get(), 1);
        assert_eq!(cells[1].get(), 0, "un-rung worker ran");
        gate.close();
        for h in handles {
            h.join();
        }
    });
    r.assert_ok();
    eprintln!(
        "gate 3p selective: {} executions, {} pruned",
        r.executions, r.pruned
    );
}

#[test]
fn gate_close_wakes_parked_workers() {
    // No epoch is ever opened: close alone must unblock every worker.
    let r = Explorer::default().check(|| {
        let gate = Arc::new(ModelEpochGate::new(3, 0));
        let handles: Vec<_> = (1..3)
            .map(|w| {
                let g = gate.clone();
                spawn(&format!("w{w}"), move || {
                    let mut seen = 0u64;
                    assert!(g.wait_for_ring(w, &mut seen), "woke without close");
                })
            })
            .collect();
        gate.close();
        for h in handles {
            h.join();
        }
    });
    r.assert_ok();
}

#[test]
fn gate_all_idle_epoch_is_free() {
    // `open_epoch` with nobody active must not touch the gate at all —
    // join(0) returns immediately and workers stay parked.
    let r = Explorer::default().check(|| {
        let gate = Arc::new(ModelEpochGate::new(2, 0));
        let g = gate.clone();
        let h = spawn("w1", move || {
            let mut seen = 0u64;
            assert!(g.wait_for_ring(1, &mut seen), "rung by an idle epoch");
        });
        gate.open_epoch(&[false, false]);
        gate.join(0);
        gate.close();
        h.join();
    });
    r.assert_ok();
}
