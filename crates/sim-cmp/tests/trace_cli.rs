//! End-to-end check of `simcmp --trace`: the emitted file must be valid
//! Chrome trace_event JSON that round-trips through the JSON parser.

use sim_base::json::{parse, Json};
use std::process::Command;

const PROGRAM: &str = "\
    li r1, 0x8000\n\
    li r2, 7\n\
    st r2, 0(r1)\n\
    ld r3, 0(r1)\n\
    li r1, 1\n\
    barw r1\n\
spin:\n\
    barr r2\n\
    bne r2, r0, spin\n\
    halt\n";

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("simcmp_trace_cli_{}_{name}", std::process::id()));
    p
}

#[test]
fn trace_flag_writes_valid_chrome_json() {
    let prog = tmp("prog.s");
    let out = tmp("trace.json");
    std::fs::write(&prog, PROGRAM).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_simcmp"))
        .arg(&prog)
        .args(["--cores", "4", "--trace"])
        .arg(&out)
        .status()
        .expect("simcmp runs");
    assert!(status.success(), "simcmp --trace exited with {status}");

    let text = std::fs::read_to_string(&out).expect("trace file written");
    let json = parse(&text).expect("trace file is valid JSON");

    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array present");
    assert!(
        !events.is_empty(),
        "a 4-core barrier run must produce events"
    );
    for ev in events {
        assert!(
            ev.get("name").and_then(Json::as_str).is_some(),
            "event name"
        );
        assert!(ev.get("ph").and_then(Json::as_str).is_some(), "event phase");
        assert!(
            ev.get("ts").and_then(Json::as_u64).is_some(),
            "event timestamp"
        );
        assert!(ev.get("pid").and_then(Json::as_u64).is_some(), "event pid");
    }
    // The run crossed a barrier and touched memory: both layers appear.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("barrier.")),
        "barrier events in {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("l1.")),
        "cache events present"
    );

    let _ = std::fs::remove_file(&prog);
    let _ = std::fs::remove_file(&out);
}

#[test]
fn trace_last_flag_dumps_ring_tail() {
    let prog = tmp("prog2.s");
    std::fs::write(&prog, PROGRAM).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_simcmp"))
        .arg(&prog)
        .args(["--cores", "4", "--trace-last", "16"])
        .output()
        .expect("simcmp runs");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--- last"),
        "ring dump header missing:\n{stderr}"
    );

    let _ = std::fs::remove_file(&prog);
}
