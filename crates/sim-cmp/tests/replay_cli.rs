//! End-to-end checks of `simcmp --record-trace` / `--replay`: flag
//! conflicts, bad directories, stdout purity, and the record→replay
//! round trip through a temp directory.

use sim_base::json::parse;
use std::path::PathBuf;
use std::process::{Command, Output};

const PROGRAM: &str = "\
    li r1, 0x8000\n\
    li r2, 7\n\
    st r2, 0(r1)\n\
    ld r3, 0(r1)\n\
    li r1, 1\n\
    barw r1\n\
spin:\n\
    barr r2\n\
    bne r2, r0, spin\n\
    halt\n";

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("simcmp_replay_cli_{}_{name}", std::process::id()));
    p
}

/// Writes the test program and runs simcmp with `args` appended.
fn simcmp(prog: Option<&PathBuf>, args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simcmp"));
    if let Some(p) = prog {
        cmd.arg(p);
    }
    cmd.args(args).output().expect("simcmp runs")
}

fn prog_file(name: &str) -> PathBuf {
    let p = tmp(name);
    std::fs::write(&p, PROGRAM).unwrap();
    p
}

fn assert_dies(out: &Output, needle: &str) {
    assert!(
        !out.status.success(),
        "expected failure, got success (stderr: {})",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "stderr missing {needle:?}:\n{stderr}"
    );
}

#[test]
fn record_and_replay_are_mutually_exclusive() {
    let prog = prog_file("conflict.s");
    let dir = tmp("conflict_dir");
    let out = simcmp(
        Some(&prog),
        &[
            "--cores",
            "4",
            "--record-trace",
            dir.to_str().unwrap(),
            "--replay",
            dir.to_str().unwrap(),
        ],
    );
    assert_dies(&out, "mutually exclusive");
    let _ = std::fs::remove_file(&prog);
}

#[test]
fn record_refuses_event_tracing() {
    let prog = prog_file("rec_trace.s");
    let dir = tmp("rec_trace_dir");
    let json = tmp("rec_trace.json");
    let out = simcmp(
        Some(&prog),
        &[
            "--cores",
            "4",
            "--record-trace",
            dir.to_str().unwrap(),
            "--trace",
            json.to_str().unwrap(),
        ],
    );
    assert_dies(&out, "--record-trace cannot be combined with --trace");
    let _ = std::fs::remove_file(&prog);
}

#[test]
fn replay_takes_no_program_files() {
    let prog = prog_file("replay_prog.s");
    let dir = tmp("replay_prog_dir");
    let out = simcmp(Some(&prog), &["--replay", dir.to_str().unwrap()]);
    assert_dies(&out, "--replay takes no program files");
    let _ = std::fs::remove_file(&prog);
}

#[test]
fn replay_of_missing_dir_fails_cleanly() {
    let dir = tmp("missing_dir");
    let out = simcmp(None, &["--replay", dir.to_str().unwrap()]);
    assert_dies(&out, "--replay");
    // A structured error, not a panic backtrace.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked"),
        "missing dir must not panic:\n{stderr}"
    );
}

#[test]
fn record_into_unwritable_path_fails_cleanly() {
    // A path *under a regular file* cannot be created by any process,
    // root included, so the recorder's directory write must die with
    // its structured message.
    let blocker = tmp("blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let dir = blocker.join("traces");
    let prog = prog_file("unwritable.s");
    let out = simcmp(
        Some(&prog),
        &["--cores", "4", "--record-trace", dir.to_str().unwrap()],
    );
    assert_dies(&out, "--record-trace");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked"),
        "unwritable dir must not panic:\n{stderr}"
    );
    let _ = std::fs::remove_file(&blocker);
    let _ = std::fs::remove_file(&prog);
}

#[test]
fn replay_rejects_mismatched_core_count() {
    let prog = prog_file("core_mismatch.s");
    let dir = tmp("core_mismatch_dir");
    let rec = simcmp(
        Some(&prog),
        &["--cores", "4", "--record-trace", dir.to_str().unwrap()],
    );
    assert!(rec.status.success(), "recording failed");
    let out = simcmp(None, &["--cores", "8", "--replay", dir.to_str().unwrap()]);
    assert_dies(&out, "the trace set holds 4 cores");
    let _ = std::fs::remove_file(&prog);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn record_replay_round_trip_is_bit_identical_and_stdout_stays_pure() {
    let prog = prog_file("round_trip.s");
    let dir = tmp("round_trip_dir");

    // Record with --json: stdout must be exactly the report document.
    let rec = simcmp(
        Some(&prog),
        &[
            "--cores",
            "4",
            "--json",
            "--sched-stats",
            "--record-trace",
            dir.to_str().unwrap(),
        ],
    );
    assert!(
        rec.status.success(),
        "recording failed: {}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let rec_stdout = String::from_utf8(rec.stdout).unwrap();
    let rec_json = parse(rec_stdout.trim())
        .unwrap_or_else(|e| panic!("record stdout is not pure JSON ({e}):\n{rec_stdout}"));
    assert!(rec_json.get("cycles").is_some(), "report JSON has cycles");
    assert!(
        dir.join("manifest.json").is_file(),
        "recording wrote no manifest"
    );

    // Replay the directory (no program files, core count derived from
    // the manifest): the JSON report must be byte-identical, and the
    // diagnostics must stay on stderr.
    let rep = simcmp(
        None,
        &["--json", "--sched-stats", "--replay", dir.to_str().unwrap()],
    );
    assert!(
        rep.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&rep.stderr)
    );
    let rep_stdout = String::from_utf8(rep.stdout).unwrap();
    parse(rep_stdout.trim())
        .unwrap_or_else(|e| panic!("replay stdout is not pure JSON ({e}):\n{rep_stdout}"));
    assert_eq!(
        rec_stdout, rep_stdout,
        "replay report JSON differs from the recorded run's"
    );
    let rep_stderr = String::from_utf8_lossy(&rep.stderr);
    assert!(
        rep_stderr.contains("skip:") && rep_stderr.contains("active sets:"),
        "sched-stats diagnostics missing from replay stderr:\n{rep_stderr}"
    );

    let _ = std::fs::remove_file(&prog);
    let _ = std::fs::remove_dir_all(&dir);
}
