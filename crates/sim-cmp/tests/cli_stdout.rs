//! Regression: machine-readable stdout must stay machine-readable.
//! `--json` pipelines (`simcmp … --json | jq`) break if any diagnostic
//! — in particular `--sched-stats` — leaks onto stdout, so everything
//! except the report JSON and `--peek` lines goes to stderr.

use sim_base::json::parse;
use std::process::Command;

const PROGRAM: &str = "\
    li r1, 0x8000\n\
    li r2, 7\n\
    st r2, 0(r1)\n\
    ld r3, 0(r1)\n\
    li r1, 1\n\
    barw r1\n\
spin:\n\
    barr r2\n\
    bne r2, r0, spin\n\
    halt\n";

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("simcmp_cli_stdout_{}_{name}", std::process::id()));
    p
}

fn run(args: &[&str], env_workers: Option<&str>) -> (String, String) {
    let prog = tmp("prog.s");
    std::fs::write(&prog, PROGRAM).unwrap();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simcmp"));
    cmd.arg(&prog).args(args);
    match env_workers {
        Some(w) => cmd.env("SIMCMP_WORKERS", w),
        None => cmd.env_remove("SIMCMP_WORKERS"),
    };
    let out = cmd.output().expect("simcmp runs");
    let _ = std::fs::remove_file(&prog);
    assert!(out.status.success(), "simcmp exited with {}", out.status);
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn json_with_sched_stats_keeps_stdout_pure() {
    let (stdout, stderr) = run(&["--cores", "4", "--json", "--sched-stats"], None);
    // The whole of stdout must be one valid JSON document — no
    // diagnostics interleaved before, after, or inside it.
    let rep = parse(stdout.trim()).unwrap_or_else(|e| {
        panic!("stdout is not pure JSON ({e}):\n{stdout}");
    });
    assert!(rep.get("cycles").is_some(), "report JSON has cycles");
    // The diagnostics still appear — on stderr.
    assert!(
        stderr.contains("skip:") && stderr.contains("active sets:"),
        "sched-stats diagnostics missing from stderr:\n{stderr}"
    );
}

#[test]
fn parallel_engine_emits_identical_report_json() {
    let (serial, _) = run(&["--cores", "8", "--json"], None);
    let (flagged, _) = run(&["--cores", "8", "--json", "--workers", "4"], None);
    let (envved, _) = run(&["--cores", "8", "--json"], Some("4"));
    assert_eq!(serial, flagged, "--workers 4 changed the report");
    assert_eq!(serial, envved, "SIMCMP_WORKERS=4 changed the report");
}
