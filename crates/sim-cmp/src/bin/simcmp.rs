//! `simcmp` — assemble and run programs on the simulated CMP.
//!
//! ```text
//! simcmp PROGRAM.s [PROGRAM2.s …] [options]
//!
//!   One program file: every core runs it (SPMD).
//!   N program files:  core i runs the i-th file; N must equal --cores.
//!
//! Options:
//!   --cores N          number of cores (default 4; mesh is the squarest
//!                      factorization)
//!   --mesh RxC         explicit mesh geometry, e.g. --mesh 16x16 (the
//!                      core count is R*C; combined with --cores the two
//!                      must agree). Meshes beyond the flat G-line budget
//!                      automatically use the two-level clustered barrier
//!                      network
//!   --gl-transmitters N  transmitters per G-line (default 7; sets the
//!                      flat-network limit and the clustered network's
//!                      cluster dimension N+1)
//!   --max-cycles N     deadlock guard (default 100_000_000)
//!   --poke ADDR=VAL    pre-load a memory word (repeatable; hex or dec)
//!   --peek ADDR        print a memory word after the run (repeatable)
//!   --json             print the full report as JSON
//!   --breakdown        print the per-category cycle breakdown
//!   --progress N       print a status line every N cycles
//!   --no-skip          disable quiescence-aware cycle skipping and
//!                      tick every cycle (debugging escape hatch; the
//!                      report is bit-identical either way, traced runs
//!                      always tick every cycle)
//!   --no-active-set    disable active-set micro-scheduling and visit
//!                      every router/home/core each ticked cycle
//!                      (debugging escape hatch; the report is
//!                      bit-identical either way)
//!   --sched-stats      print scheduler diagnostics after the run:
//!                      skip attempt/success/backoff counters and the
//!                      mean active-set occupancy per subsystem
//!   --workers N        advance the machine with N shard threads (the
//!                      epoch-batched parallel engine; default from the
//!                      SIMCMP_WORKERS environment variable, else 1 =
//!                      serial). Reports are bit-identical for every
//!                      worker count; traced runs always use the
//!                      serial engine
//!   --per-cycle-sync   use the legacy per-cycle rendezvous protocol
//!                      (two barrier crossings per ticked cycle)
//!                      instead of epoch batching; bit-identical, just
//!                      slower on contended workloads (only meaningful
//!                      with --workers > 1)
//!   --trace FILE       record every event and write a Chrome
//!                      trace_event JSON file (open in about://tracing
//!                      or Perfetto)
//!   --trace-last N     keep the last N events in a ring and print them
//!                      to stderr after the run
//!   --record-trace DIR run dense and cycle-exact, recording every
//!                      core's issue groups; write the trace set
//!                      (manifest.json + core<i>.trace) into DIR
//!   --replay DIR       drive the cores from the trace set in DIR
//!                      instead of program files (no PROGRAM.s
//!                      arguments; --cores, if given, must match the
//!                      set). The replayed run's report, memory and
//!                      events are bit-identical to the recorded one
//! ```
//!
//! Exit code 0 on success, 1 on assembly/trace errors, 2 on a run that
//! does not halt.

use gline_core::{BarrierHw, ClusteredBarrierNetwork};
use sim_base::config::CmpConfig;
use sim_base::json::ToJson;
use sim_base::stats::TimeCat;
use sim_base::trace::{ChromeTraceSink, RingSink, TraceSink, Tracer};
use sim_base::Mesh2D;
use sim_cmp::System;
use sim_isa::{assemble, Program};
use sim_trace::TraceSet;
use std::path::Path;

fn parse_num(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn die(msg: &str) -> ! {
    eprintln!("simcmp: {msg}");
    std::process::exit(1);
}

/// Parses `RxC` (e.g. `16x16`) into nonzero mesh dimensions.
fn parse_mesh(s: &str) -> Option<(u16, u16)> {
    let (r, c) = s.split_once(['x', 'X'])?;
    let (r, c) = (r.parse().ok()?, c.parse().ok()?);
    (r > 0 && c > 0).then_some((r, c))
}

/// Builds the run configuration from the geometry flags, exiting with a
/// named-field diagnostic instead of a panic on an inconsistent request.
fn build_config(
    cores: usize,
    cores_explicit: bool,
    mesh: Option<(u16, u16)>,
    gl_transmitters: Option<u32>,
) -> CmpConfig {
    let mut cfg = match mesh {
        Some((r, c)) => {
            let n = r as usize * c as usize;
            if cores_explicit && n != cores {
                die(&format!(
                    "--mesh {r}x{c} is {n} cores but the run has {cores} cores"
                ));
            }
            let mut cfg = CmpConfig::icpp2010();
            cfg.mesh = Mesh2D::new(r, c);
            cfg
        }
        None => CmpConfig::icpp2010_with_cores(cores),
    };
    if let Some(t) = gl_transmitters {
        cfg.gline.max_transmitters = t;
    }
    cfg.validate().unwrap_or_else(|e| die(&e));
    cfg
}

/// Exit for trace requests on meshes that need the clustered network,
/// which has no traced variant.
fn clustered_trace_unsupported(cfg: &CmpConfig) -> ! {
    let dim = cfg.gline.max_transmitters + 1;
    die(&format!(
        "{}x{} mesh exceeds the flat G-line budget (gline.max_transmitters = {}, \
         max {dim}x{dim} flat) and event tracing supports only the flat network; \
         drop --trace/--trace-last, raise --gl-transmitters, or shrink the mesh",
        cfg.mesh.rows, cfg.mesh.cols, cfg.gline.max_transmitters
    ));
}

/// Everything main() parsed that the run loop needs.
struct Opts {
    max_cycles: u64,
    pokes: Vec<(u64, u64)>,
    peeks: Vec<u64>,
    json: bool,
    breakdown: bool,
    progress: Option<u64>,
    cores: usize,
    no_skip: bool,
    no_active_set: bool,
    sched_stats: bool,
    workers: usize,
    per_cycle_sync: bool,
}

/// Runs the system to completion and prints the report. Monomorphized
/// per barrier hardware and trace sink so the untraced path stays
/// zero-cost.
fn run_system<B: BarrierHw, S: TraceSink>(mut sys: System<B, S>, opts: &Opts) {
    sys.set_skip_enabled(!opts.no_skip);
    sys.set_active_set_enabled(!opts.no_active_set);
    if opts.per_cycle_sync {
        sys.set_sync_protocol(sim_cmp::SyncProtocol::PerCycle);
    }
    for &(a, v) in &opts.pokes {
        sys.poke_word(a, v);
    }
    let outcome = match opts.progress {
        Some(every) => {
            if opts.workers > 1 {
                eprintln!(
                    "simcmp: --progress uses the serial engine (--workers {} ignored)",
                    opts.workers
                );
            }
            sys.run_with_progress(opts.max_cycles, every, |rep| {
                eprintln!(
                    "[cycle {:>10}] {} instructions, {} NoC messages, {} GL barriers",
                    rep.cycles,
                    rep.instructions,
                    rep.traffic.total(),
                    rep.gl_barriers
                );
            })
        }
        None if opts.workers > 1 => sys.run_with_workers(opts.max_cycles, opts.workers),
        None => sys.run(opts.max_cycles),
    };
    finish(&sys, outcome, opts);
}

/// Runs the system dense and cycle-exact while recording every core's
/// issue groups, prints the usual report, and writes the trace set into
/// `dir`.
fn record_system<B: BarrierHw>(mut sys: System<B>, opts: &Opts, dir: &str, workload: String) {
    if opts.workers > 1 {
        eprintln!(
            "simcmp: --record-trace uses the dense serial engine (--workers {} ignored)",
            opts.workers
        );
    }
    if opts.progress.is_some() {
        eprintln!("simcmp: --record-trace ignores --progress");
    }
    for &(a, v) in &opts.pokes {
        sys.poke_word(a, v);
    }
    let (outcome, traces) = match sys.run_recorded(opts.max_cycles) {
        Ok((cycles, traces)) => (Ok(cycles), traces),
        Err(e) => (Err(e), Vec::new()),
    };
    finish(&sys, outcome, opts); // exits on a run that did not halt
    let set = TraceSet {
        cores: traces,
        pokes: opts.pokes.clone(),
        workload,
    };
    sim_trace::write_dir(Path::new(dir), &set)
        .unwrap_or_else(|e| die(&format!("--record-trace {dir}: {e}")));
    eprintln!("wrote {} core traces to {dir}", set.cores.len());
}

/// Prints the report (or the deadlock diagnostic) for a finished run.
fn finish<B: BarrierHw, S: TraceSink>(
    sys: &System<B, S>,
    outcome: Result<u64, String>,
    opts: &Opts,
) {
    match outcome {
        Ok(cycles) => {
            let rep = sys.report();
            if opts.json {
                println!("{}", rep.to_json().pretty());
            } else {
                eprintln!(
                    "halted after {cycles} cycles ({} instructions, IPC {:.2})",
                    rep.instructions,
                    rep.instructions as f64 / (cycles.max(1) as f64 * opts.cores as f64)
                );
                eprintln!(
                    "L1: {} hits / {} misses; NoC messages: {}; GL barriers: {}",
                    rep.l1_hits,
                    rep.l1_misses,
                    rep.traffic.total(),
                    rep.gl_barriers
                );
                if opts.breakdown {
                    for cat in TimeCat::ALL {
                        eprintln!(
                            "  {:<8} {:>6.2}%",
                            cat.label(),
                            100.0 * rep.time_fraction(cat)
                        );
                    }
                }
            }
            if opts.sched_stats {
                let skip = sys.skip_stats();
                let core = sys.core_sched_stats();
                let mem = sys.mem_sched_stats();
                let noc = sys.noc_sched_stats();
                eprintln!(
                    "skip: {} attempts, {} skips ({} cycles), {} backed off",
                    skip.attempts, skip.skips, skip.cycles_skipped, skip.backed_off
                );
                eprintln!(
                    "active sets: {:.2} cores, {:.2} homes, {:.2} routers (mean per ticked cycle)",
                    core.mean_active_cores(),
                    mem.mean_busy_homes(),
                    noc.mean_active_routers()
                );
                eprintln!(
                    "core parking: {} stall steps, {} spin steps elided",
                    core.parked_steps, core.spin_parked_steps
                );
                let sync = sys.sync_stats();
                if sync.par_cycles > 0 {
                    eprintln!(
                        "sync: {} epochs (mean {:.1} cycles), {:.2} crossings/kcycle, \
                         {} shard-epochs skipped, {} wakeups",
                        sync.epochs,
                        sync.mean_epoch_len(),
                        sync.crossings_per_kilocycle(),
                        sync.shard_epochs_skipped,
                        sync.wakeups
                    );
                }
            }
            for &a in &opts.peeks {
                println!("[0x{a:x}] = {}", sys.peek_word(a));
            }
        }
        Err(e) => {
            eprintln!("simcmp: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: simcmp PROGRAM.s [PROGRAM2.s …] [--cores N] [--mesh RxC]");
        eprintln!("              [--gl-transmitters N] [--max-cycles N]");
        eprintln!("              [--poke ADDR=VAL]… [--peek ADDR]… [--json] [--breakdown]");
        eprintln!("              [--no-skip] [--no-active-set] [--sched-stats] [--workers N]");
        eprintln!("              [--per-cycle-sync]");
        eprintln!("              [--trace FILE] [--trace-last N]");
        eprintln!("              [--record-trace DIR | --replay DIR]");
        std::process::exit(if args.is_empty() { 1 } else { 0 });
    }

    let mut files = Vec::new();
    let mut cores = 4usize;
    let mut cores_explicit = false;
    let mut max_cycles = 100_000_000u64;
    let mut pokes: Vec<(u64, u64)> = Vec::new();
    let mut peeks: Vec<u64> = Vec::new();
    let mut json = false;
    let mut breakdown = false;
    let mut progress: Option<u64> = None;
    let mut no_skip = false;
    let mut no_active_set = false;
    let mut sched_stats = false;
    let mut per_cycle_sync = false;
    // The env default lets CI run the whole suite under the parallel
    // engine without touching every invocation.
    let mut workers = std::env::var("SIMCMP_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1usize);
    let mut mesh: Option<(u16, u16)> = None;
    let mut gl_transmitters: Option<u32> = None;
    let mut trace_file: Option<String> = None;
    let mut trace_last: Option<usize> = None;
    let mut record_dir: Option<String> = None;
    let mut replay_dir: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cores" => {
                cores = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cores needs a number"));
                cores_explicit = true;
            }
            "--mesh" => {
                mesh = Some(
                    it.next()
                        .as_deref()
                        .and_then(parse_mesh)
                        .unwrap_or_else(|| die("--mesh needs RxC with nonzero dimensions")),
                );
            }
            "--gl-transmitters" => {
                gl_transmitters = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--gl-transmitters needs a number")),
                );
            }
            "--max-cycles" => {
                max_cycles = it
                    .next()
                    .and_then(|v| parse_num(&v))
                    .unwrap_or_else(|| die("--max-cycles needs a number"));
            }
            "--poke" => {
                let spec = it.next().unwrap_or_else(|| die("--poke needs ADDR=VAL"));
                let (a, v) = spec
                    .split_once('=')
                    .unwrap_or_else(|| die("--poke needs ADDR=VAL"));
                pokes.push((
                    parse_num(a).unwrap_or_else(|| die("bad poke address")),
                    parse_num(v).unwrap_or_else(|| die("bad poke value")),
                ));
            }
            "--peek" => {
                let a = it.next().unwrap_or_else(|| die("--peek needs ADDR"));
                peeks.push(parse_num(&a).unwrap_or_else(|| die("bad peek address")));
            }
            "--json" => json = true,
            "--breakdown" => breakdown = true,
            "--no-skip" => no_skip = true,
            "--no-active-set" => no_active_set = true,
            "--sched-stats" => sched_stats = true,
            "--per-cycle-sync" => per_cycle_sync = true,
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w >= 1)
                    .unwrap_or_else(|| die("--workers needs a thread count >= 1"));
            }
            "--progress" => {
                progress = Some(
                    it.next()
                        .and_then(|v| parse_num(&v))
                        .unwrap_or_else(|| die("--progress needs a cycle count")),
                );
            }
            "--trace" => {
                trace_file = Some(
                    it.next()
                        .unwrap_or_else(|| die("--trace needs a file name")),
                );
            }
            "--trace-last" => {
                trace_last = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--trace-last needs an event count")),
                );
            }
            "--record-trace" => {
                record_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--record-trace needs a directory")),
                );
            }
            "--replay" => {
                replay_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--replay needs a directory")),
                );
            }
            f if !f.starts_with("--") => files.push(f.to_string()),
            other => die(&format!("unknown option {other}")),
        }
    }
    if record_dir.is_some() && replay_dir.is_some() {
        die("--record-trace and --replay are mutually exclusive");
    }
    if trace_file.is_some() && trace_last.is_some() {
        die("--trace and --trace-last are mutually exclusive");
    }
    if record_dir.is_some() && (trace_file.is_some() || trace_last.is_some()) {
        die("--record-trace cannot be combined with --trace/--trace-last");
    }

    if let Some(dir) = replay_dir {
        if !files.is_empty() {
            die("--replay takes no program files");
        }
        let set = sim_trace::read_dir(Path::new(&dir))
            .unwrap_or_else(|e| die(&format!("--replay {dir}: {e}")));
        let n = set.cores.len();
        if cores_explicit && cores != n {
            die(&format!(
                "--cores {cores} but the trace set holds {n} cores"
            ));
        }
        let cfg = build_config(n, true, mesh, gl_transmitters);
        let opts = Opts {
            max_cycles,
            pokes,
            peeks,
            json,
            breakdown,
            progress,
            cores: n,
            no_skip,
            no_active_set,
            sched_stats,
            workers,
            per_cycle_sync,
        };
        if cfg.needs_clustered_gline() {
            if trace_file.is_some() || trace_last.is_some() {
                clustered_trace_unsupported(&cfg);
            }
            let hw = ClusteredBarrierNetwork::new(cfg.mesh, cfg.gline);
            run_system(System::replay_with_barrier_hw(cfg, &set, hw), &opts);
        } else if let Some(path) = trace_file {
            let tracer = Tracer::new(ChromeTraceSink::new());
            run_system(System::replay_traced(cfg, &set, tracer.clone()), &opts);
            let (count, out) = tracer.with_sink(|s| (s.events().len(), s.to_json_string()));
            std::fs::write(&path, out).unwrap_or_else(|e| die(&format!("{path}: {e}")));
            eprintln!("wrote {count} events to {path}");
        } else if let Some(last) = trace_last {
            let tracer = Tracer::new(RingSink::new(last));
            run_system(System::replay_traced(cfg, &set, tracer.clone()), &opts);
            tracer.with_sink(|s| {
                eprintln!(
                    "--- last {} of {} events ---\n{}",
                    s.len(),
                    s.total_seen(),
                    s.dump()
                );
            });
        } else {
            run_system(System::replay(cfg, &set), &opts);
        }
        return;
    }

    if files.is_empty() {
        die("no program files given");
    }

    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(f).unwrap_or_else(|e| die(&format!("{f}: {e}"))))
        .collect();
    let progs: Vec<Program> = sources
        .iter()
        .zip(&files)
        .map(|(src, f)| match assemble(src) {
            Ok(p) => p,
            Err(e) => die(&format!("{f}: {e}")),
        })
        .collect();

    let cfg = build_config(cores, cores_explicit, mesh, gl_transmitters);
    let cores = cfg.num_cores();
    let progs = if progs.len() == 1 {
        vec![progs[0].clone(); cores]
    } else if progs.len() == cores {
        progs
    } else {
        die(&format!(
            "{} program files but the run has {cores} cores",
            progs.len()
        ));
    };

    let opts = Opts {
        max_cycles,
        pokes,
        peeks,
        json,
        breakdown,
        progress,
        cores,
        no_skip,
        no_active_set,
        sched_stats,
        workers,
        per_cycle_sync,
    };

    if cfg.needs_clustered_gline() {
        if trace_file.is_some() || trace_last.is_some() {
            clustered_trace_unsupported(&cfg);
        }
        let hw = ClusteredBarrierNetwork::new(cfg.mesh, cfg.gline);
        if let Some(dir) = record_dir {
            record_system(
                System::with_barrier_hw(cfg, progs, hw),
                &opts,
                &dir,
                files.join(" "),
            );
        } else {
            run_system(System::with_barrier_hw(cfg, progs, hw), &opts);
        }
    } else if let Some(dir) = record_dir {
        record_system(System::new(cfg, progs), &opts, &dir, files.join(" "));
    } else if let Some(path) = trace_file {
        let tracer = Tracer::new(ChromeTraceSink::new());
        run_system(System::traced(cfg, progs, tracer.clone()), &opts);
        let (count, out) = tracer.with_sink(|s| (s.events().len(), s.to_json_string()));
        std::fs::write(&path, out).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        eprintln!("wrote {count} events to {path}");
    } else if let Some(n) = trace_last {
        let tracer = Tracer::new(RingSink::new(n));
        run_system(System::traced(cfg, progs, tracer.clone()), &opts);
        tracer.with_sink(|s| {
            eprintln!(
                "--- last {} of {} events ---\n{}",
                s.len(),
                s.total_seen(),
                s.dump()
            );
        });
    } else {
        run_system(System::new(cfg, progs), &opts);
    }
}
