//! `simcmp` — assemble and run programs on the simulated CMP.
//!
//! ```text
//! simcmp PROGRAM.s [PROGRAM2.s …] [options]
//!
//!   One program file: every core runs it (SPMD).
//!   N program files:  core i runs the i-th file; N must equal --cores.
//!
//! Options:
//!   --cores N          number of cores (default 4; mesh is the squarest
//!                      factorization)
//!   --max-cycles N     deadlock guard (default 100_000_000)
//!   --poke ADDR=VAL    pre-load a memory word (repeatable; hex or dec)
//!   --peek ADDR        print a memory word after the run (repeatable)
//!   --json             print the full report as JSON
//!   --breakdown        print the per-category cycle breakdown
//!   --progress N       print a status line every N cycles
//! ```
//!
//! Exit code 0 on success, 1 on assembly errors, 2 on a run that does
//! not halt.

use sim_base::config::CmpConfig;
use sim_base::stats::TimeCat;
use sim_cmp::System;
use sim_isa::{assemble, Program};

fn parse_num(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn die(msg: &str) -> ! {
    eprintln!("simcmp: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: simcmp PROGRAM.s [PROGRAM2.s …] [--cores N] [--max-cycles N]");
        eprintln!("              [--poke ADDR=VAL]… [--peek ADDR]… [--json] [--breakdown]");
        std::process::exit(if args.is_empty() { 1 } else { 0 });
    }

    let mut files = Vec::new();
    let mut cores = 4usize;
    let mut max_cycles = 100_000_000u64;
    let mut pokes: Vec<(u64, u64)> = Vec::new();
    let mut peeks: Vec<u64> = Vec::new();
    let mut json = false;
    let mut breakdown = false;
    let mut progress: Option<u64> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cores" => {
                cores = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cores needs a number"));
            }
            "--max-cycles" => {
                max_cycles = it
                    .next()
                    .and_then(|v| parse_num(&v))
                    .unwrap_or_else(|| die("--max-cycles needs a number"));
            }
            "--poke" => {
                let spec = it.next().unwrap_or_else(|| die("--poke needs ADDR=VAL"));
                let (a, v) = spec.split_once('=').unwrap_or_else(|| die("--poke needs ADDR=VAL"));
                pokes.push((
                    parse_num(a).unwrap_or_else(|| die("bad poke address")),
                    parse_num(v).unwrap_or_else(|| die("bad poke value")),
                ));
            }
            "--peek" => {
                let a = it.next().unwrap_or_else(|| die("--peek needs ADDR"));
                peeks.push(parse_num(&a).unwrap_or_else(|| die("bad peek address")));
            }
            "--json" => json = true,
            "--breakdown" => breakdown = true,
            "--progress" => {
                progress = Some(
                    it.next()
                        .and_then(|v| parse_num(&v))
                        .unwrap_or_else(|| die("--progress needs a cycle count")),
                );
            }
            f if !f.starts_with("--") => files.push(f.to_string()),
            other => die(&format!("unknown option {other}")),
        }
    }
    if files.is_empty() {
        die("no program files given");
    }

    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(f).unwrap_or_else(|e| die(&format!("{f}: {e}"))))
        .collect();
    let progs: Vec<Program> = sources
        .iter()
        .zip(&files)
        .map(|(src, f)| match assemble(src) {
            Ok(p) => p,
            Err(e) => die(&format!("{f}: {e}")),
        })
        .collect();

    let progs = if progs.len() == 1 {
        vec![progs[0].clone(); cores]
    } else if progs.len() == cores {
        progs
    } else {
        die(&format!("{} program files but --cores {cores}", progs.len()));
    };

    let cfg = CmpConfig::icpp2010_with_cores(cores);
    let mut sys = System::new(cfg, progs);
    for (a, v) in pokes {
        sys.poke_word(a, v);
    }
    let outcome = match progress {
        Some(every) => sys.run_with_progress(max_cycles, every, |rep| {
            eprintln!(
                "[cycle {:>10}] {} instructions, {} NoC messages, {} GL barriers",
                rep.cycles,
                rep.instructions,
                rep.traffic.total(),
                rep.gl_barriers
            );
        }),
        None => sys.run(max_cycles),
    };
    match outcome {
        Ok(cycles) => {
            let rep = sys.report();
            if json {
                println!("{}", serde_json::to_string_pretty(&rep).expect("serialize"));
            } else {
                eprintln!(
                    "halted after {cycles} cycles ({} instructions, IPC {:.2})",
                    rep.instructions,
                    rep.instructions as f64 / (cycles.max(1) as f64 * cores as f64)
                );
                eprintln!(
                    "L1: {} hits / {} misses; NoC messages: {}; GL barriers: {}",
                    rep.l1_hits,
                    rep.l1_misses,
                    rep.traffic.total(),
                    rep.gl_barriers
                );
                if breakdown {
                    for cat in TimeCat::ALL {
                        eprintln!(
                            "  {:<8} {:>6.2}%",
                            cat.label(),
                            100.0 * rep.time_fraction(cat)
                        );
                    }
                }
            }
            for a in peeks {
                println!("[0x{a:x}] = {}", sys.peek_word(a));
            }
        }
        Err(e) => {
            eprintln!("simcmp: {e}");
            std::process::exit(2);
        }
    }
}
