//! The parallel engines: the per-cycle sharded tick (`DESIGN.md` §11)
//! and the epoch-batched free-run protocol (`DESIGN.md` §13).
//!
//! [`System::run_with_workers`](crate::System::run_with_workers)
//! partitions the tiles into contiguous shards, one per worker thread,
//! and advances the machine in alternating phases:
//!
//! * **Compute** (parallel): every worker steps its shard's cores for
//!   one cycle against *frozen* shared state — the previous exchange's
//!   NoC delivery flags, the barrier network as of the cycle start —
//!   writing only shard-local state (its cores, their L1 lanes, its
//!   park arrays) plus two deterministic outboxes: latched `bar_reg`
//!   arrival writes and L1 protocol messages.
//! * **Exchange** (serialized on the coordinator): latched barrier
//!   writes replay into the real network in ascending core order, tile
//!   outboxes flush into the NoC in ascending tile order — both exactly
//!   the orders the serial core loop produces — then the shared
//!   components (`mem.tick`, `gline.tick`) advance and the clock
//!   increments.
//!
//! The two phases are separated by a sense-reversing
//! [`SpinBarrier`]; the coordinator (the caller's thread) doubles as
//! worker 0. Because every cross-shard effect is buffered and applied
//! in a thread-independent order, the parallel engine is **bit-identical**
//! to the serial one: same [`SystemReport`](crate::SystemReport), same
//! architectural memory, same scheduler statistics — the property
//! `tests/parallel_determinism.rs` proves.
//!
//! # Safety model
//!
//! All sharing goes through [`CycleCtx`], whose `unsafe impl Sync`
//! carries the proof obligations:
//!
//! * [`Ptrs`] is refreshed by the coordinator **while every worker is
//!   parked at the release barrier**, and read by workers only between
//!   the release and join barriers. The barrier's `AcqRel` protocol
//!   provides the happens-before edges both ways.
//! * Workers dereference disjoint index ranges (their shard) of the
//!   core/park/lane arrays; `WorkerOut` slots are indexed by worker id.
//! * The tracer and barrier-network pointers are shared read-only. The
//!   tracer is an `Rc`-based handle and **not** `Sync`; the parallel
//!   path is gated on `!S::ENABLED` (see
//!   [`System::run_with_workers`](crate::System::run_with_workers)), and
//!   every tracer touch in the core/memory/network models is gated on
//!   `S::ENABLED`, so no worker ever touches the `Rc` — the handle is
//!   only carried to satisfy signatures.

use crate::core::{Core, SpinPlan};
use crate::replay::CoreProg;
use crate::system::CoreSchedStats;
use gline_core::{BarrierHw, CtxId, GlineShadow};
use sim_base::shard::{EpochGate, SpinBarrier};
use sim_base::trace::{TraceSink, Tracer};
use sim_base::{CoreId, Cycle};
use sim_mem::{EpochTiles, TileLanes, PHASE_CORE};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// One worker's per-phase output, merged by the coordinator during the
/// exchange phase (ascending worker order). Allocations are reused
/// across cycles.
#[derive(Debug, Default)]
pub(crate) struct WorkerOut {
    /// Latched `bar_reg` arrival writes, in shard program order.
    pub(crate) latch: Vec<(Cycle, CoreId, CtxId, u64)>,
    /// Scheduler-counter delta for this phase (`ticks` stays zero; the
    /// coordinator counts ticks).
    pub(crate) sched: CoreSchedStats,
}

/// The coordinator's per-cycle snapshot of the machine, shared with the
/// workers through [`CycleCtx`]. Re-derived from `&mut System` every
/// cycle so no pointer outlives the borrows it came from.
#[derive(Debug)]
pub(crate) struct Ptrs<B: BarrierHw, S: TraceSink> {
    pub(crate) cores: *mut Core,
    pub(crate) progs: *const CoreProg,
    pub(crate) parked: *mut Option<(Cycle, Cycle)>,
    pub(crate) spin_parked: *mut Option<(SpinPlan, Cycle)>,
    pub(crate) miss_parked: *mut Option<Cycle>,
    pub(crate) lanes: TileLanes<S>,
    /// Frozen NoC delivery flags, one per tile (exact: the delivered
    /// queues only mutate in `mem.tick`, during the exchange phase).
    pub(crate) flags: *const bool,
    pub(crate) gline: *const B,
    pub(crate) tracer: *const Tracer<S>,
    pub(crate) now: Cycle,
    pub(crate) active_set: bool,
}

/// Everything the worker threads share for the lifetime of one
/// `run_with_workers` scope.
pub(crate) struct CycleCtx<B: BarrierHw, S: TraceSink> {
    /// The cycle's pointer snapshot (coordinator-written, see module
    /// docs for the phase discipline).
    pub(crate) ptrs: UnsafeCell<Ptrs<B, S>>,
    /// Shutdown flag, checked by workers after each release barrier.
    pub(crate) stop: AtomicBool,
    /// The phase barrier; all workers plus the coordinator participate.
    pub(crate) barrier: SpinBarrier,
    /// Shard `w`'s half-open tile range.
    pub(crate) shards: Vec<(usize, usize)>,
    /// Shard `w`'s output slot (worker-written during compute,
    /// coordinator-drained during exchange).
    pub(crate) outs: Vec<UnsafeCell<WorkerOut>>,
}

// SAFETY: see the module-level safety model — phase-disciplined access
// to `ptrs`/`outs` with happens-before provided by `barrier`, disjoint
// shard ranges behind the raw pointers, and a `!S::ENABLED` gate that
// keeps the non-Sync tracer handle untouched off the coordinator.
unsafe impl<B: BarrierHw, S: TraceSink> Sync for CycleCtx<B, S> {}

impl<B: BarrierHw, S: TraceSink> CycleCtx<B, S> {
    /// Builds the shared context for `shards.len()` participants.
    /// `init` is a throwaway snapshot — workers never read `ptrs`
    /// before the coordinator's first refresh.
    pub(crate) fn new(shards: Vec<(usize, usize)>, init: Ptrs<B, S>) -> CycleCtx<B, S> {
        let n = shards.len();
        CycleCtx {
            ptrs: UnsafeCell::new(init),
            stop: AtomicBool::new(false),
            barrier: SpinBarrier::new(n),
            shards,
            outs: (0..n)
                .map(|_| UnsafeCell::new(WorkerOut::default()))
                .collect(),
        }
    }
}

/// The body of worker `w` (`w >= 1`; the coordinator runs shard 0
/// inline). Parks at the release barrier, computes its shard, parks at
/// the join barrier, repeats until the stop flag is raised.
pub(crate) fn worker_loop<B: BarrierHw, S: TraceSink>(ctx: &CycleCtx<B, S>, w: usize) {
    let mut sense = false;
    loop {
        ctx.barrier.wait(&mut sense);
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        let (lo, hi) = ctx.shards[w];
        // SAFETY: between the release and join barriers the coordinator
        // does not touch `ptrs` or any shared machine state, shard
        // ranges are disjoint, and `outs[w]` belongs to this worker.
        unsafe {
            shard_phase(&*ctx.ptrs.get(), lo, hi, &mut *ctx.outs[w].get());
        }
        ctx.barrier.wait(&mut sense);
    }
}

/// Steps cores `lo..hi` for one cycle against the frozen snapshot —
/// a verbatim mirror of the per-core body of
/// [`System::tick`](crate::System::tick), with the memory system
/// replaced by the tile's [lane](sim_mem::LaneMem), the barrier network
/// by a write-latching [`GlineShadow`], the delivery predicate by the
/// frozen flags, and the scheduler counters by the worker's delta.
///
/// # Safety
///
/// Caller must uphold the [`CycleCtx`] phase discipline: `p` valid for
/// the current cycle, `lo..hi` disjoint from every concurrent caller's
/// range, `out` exclusively owned.
pub(crate) unsafe fn shard_phase<B: BarrierHw, S: TraceSink>(
    p: &Ptrs<B, S>,
    lo: usize,
    hi: usize,
    out: &mut WorkerOut,
) {
    let now = p.now;
    let mut gl = GlineShadow::new(&*p.gline, std::mem::take(&mut out.latch));
    let tracer = &*p.tracer;
    if p.active_set {
        for i in lo..hi {
            let core = &mut *p.cores.add(i);
            let prog = &*p.progs.add(i);
            let mut lane = p.lanes.lane(i);
            let delivery = *p.flags.add(i);
            let parked = &mut *p.parked.add(i);
            let spin_parked = &mut *p.spin_parked.add(i);
            let miss_parked = &mut *p.miss_parked.add(i);
            if let Some((wake, _)) = *parked {
                if now < wake {
                    out.sched.parked_steps += 1;
                    continue;
                }
                let (_, anchor) = parked.take().expect("checked above");
                core.ff_stall(now - anchor);
            }
            if let Some((plan, anchor)) = *spin_parked {
                // Same exactness argument as the serial loop: the
                // probed line only changes when a message reaches this
                // tile, and this cycle's deliveries were frozen into
                // the flags before the phase began.
                if !delivery {
                    out.sched.spin_parked_steps += 1;
                    continue;
                }
                *spin_parked = None;
                core.ff_replay(plan, now, anchor, &mut lane);
            }
            if let Some(anchor) = *miss_parked {
                if !delivery {
                    out.sched.parked_steps += 1;
                    continue;
                }
                *miss_parked = None;
                core.ff_stall(now - anchor);
            }
            if core.halted() {
                continue;
            }
            if core.waiting_on_unscheduled_resp(&lane) && !delivery {
                debug_assert!(parked.is_none() && spin_parked.is_none());
                *miss_parked = Some(now);
                out.sched.parked_steps += 1;
                continue;
            }
            if !S::ENABLED && !delivery {
                if let Some(plan) = core.park_spin(prog, &lane, now) {
                    debug_assert!(parked.is_none());
                    *spin_parked = Some((plan, now));
                    out.sched.spin_parked_steps += 1;
                    continue;
                }
            }
            out.sched.core_steps += 1;
            core.step(prog, &mut lane, &mut gl, now, tracer);
            if let Some(wake) = core.park_until(&lane) {
                if wake > now + 1 {
                    *parked = Some((wake, now + 1));
                }
            }
        }
    } else {
        for i in lo..hi {
            let core = &mut *p.cores.add(i);
            let mut lane = p.lanes.lane(i);
            if !core.halted() {
                out.sched.core_steps += 1;
            }
            core.step(&*p.progs.add(i), &mut lane, &mut gl, now, tracer);
        }
    }
    out.latch = gl.into_writes();
}

/// The coordinator's per-epoch snapshot of the machine, shared with the
/// workers through [`EpochCtx`]. Re-derived from `&mut System` every
/// epoch so no pointer outlives the borrows it came from.
#[derive(Debug)]
pub(crate) struct EpochPtrs<B: BarrierHw, S: TraceSink> {
    pub(crate) cores: *mut Core,
    pub(crate) progs: *const CoreProg,
    pub(crate) parked: *mut Option<(Cycle, Cycle)>,
    pub(crate) spin_parked: *mut Option<(SpinPlan, Cycle)>,
    pub(crate) miss_parked: *mut Option<Cycle>,
    /// Whole-tile memory views (L1 + home + bank + epoch buffers).
    pub(crate) tiles: EpochTiles<S>,
    /// Per-tile activity flags for this epoch: an inactive tile is
    /// skipped wholesale (closed-form park accounting only).
    pub(crate) tile_active: *const bool,
    pub(crate) gline: *const B,
    pub(crate) tracer: *const Tracer<S>,
    /// First cycle of the window.
    pub(crate) start: Cycle,
    /// Window length in cycles (`>= 1`).
    pub(crate) window: u64,
    pub(crate) active_set: bool,
}

/// One worker's per-epoch output, merged by the coordinator during the
/// apply phase (ascending worker order). Allocations are reused across
/// epochs.
#[derive(Debug, Default)]
pub(crate) struct EpochWorkerOut {
    /// Latched `bar_reg` arrival writes, stamped with their free-run
    /// cycle, in (tile, cycle) order within the shard.
    pub(crate) latch: Vec<(Cycle, CoreId, CtxId, u64)>,
    /// Spare latch storage handed to each tile's fresh shadow.
    pub(crate) scratch: Vec<(Cycle, CoreId, CtxId, u64)>,
    /// Scheduler-counter delta for this epoch (`ticks` stays zero; the
    /// coordinator counts ticks).
    pub(crate) sched: CoreSchedStats,
    /// Busy-home tick visits performed in the free-run (the serial
    /// `mem.tick`'s `home_visits` increments).
    pub(crate) home_visits: u64,
    /// Tile-delivery visits performed in the free-run (the serial
    /// `mem.tick`'s `delivery_visits` increments).
    pub(crate) delivery_visits: u64,
}

/// Everything the worker threads share for the lifetime of one
/// epoch-protocol `run_with_workers` scope.
pub(crate) struct EpochCtx<B: BarrierHw, S: TraceSink> {
    /// The epoch's pointer snapshot (coordinator-written while all
    /// workers are parked at the gate).
    pub(crate) ptrs: UnsafeCell<EpochPtrs<B, S>>,
    /// The rendezvous: per-worker doorbells plus one join barrier,
    /// rung only for the workers whose shards have live tiles.
    pub(crate) gate: EpochGate,
    /// Shard `w`'s half-open tile range.
    pub(crate) shards: Vec<(usize, usize)>,
    /// Shard `w`'s output slot (worker-written during the free-run,
    /// coordinator-drained during apply).
    pub(crate) outs: Vec<UnsafeCell<EpochWorkerOut>>,
}

// SAFETY: same discipline as `CycleCtx`, with the gate in place of the
// barrier — `ptrs`/`outs` are written by the coordinator only while
// every worker is parked (before `open_epoch` / after `join`), workers
// dereference disjoint shard ranges, and the tracer `Rc` is never
// touched off the coordinator (`!S::ENABLED` gate).
unsafe impl<B: BarrierHw, S: TraceSink> Sync for EpochCtx<B, S> {}

impl<B: BarrierHw, S: TraceSink> EpochCtx<B, S> {
    /// Builds the shared context for `shards.len()` participants.
    /// `init` is a throwaway snapshot — workers never read `ptrs`
    /// before the coordinator's first refresh.
    pub(crate) fn new(shards: Vec<(usize, usize)>, init: EpochPtrs<B, S>) -> EpochCtx<B, S> {
        let n = shards.len();
        EpochCtx {
            ptrs: UnsafeCell::new(init),
            gate: EpochGate::new(n),
            shards,
            outs: (0..n)
                .map(|_| UnsafeCell::new(EpochWorkerOut::default()))
                .collect(),
        }
    }
}

/// The body of epoch worker `w` (`w >= 1`; the coordinator runs shard 0
/// inline). Parks on its doorbell, free-runs its shard for the posted
/// window, arrives at the join barrier, repeats until the gate closes.
pub(crate) fn epoch_worker_loop<B: BarrierHw, S: TraceSink>(ctx: &EpochCtx<B, S>, w: usize) {
    let mut seen = 0u64;
    loop {
        if ctx.gate.wait_for_ring(w, &mut seen) {
            return;
        }
        let (lo, hi) = ctx.shards[w];
        // SAFETY: between the ring and the join the coordinator does not
        // touch `ptrs` or any shared machine state, shard ranges are
        // disjoint, and `outs[w]` belongs to this worker.
        unsafe {
            epoch_shard_phase(&*ctx.ptrs.get(), lo, hi, &mut *ctx.outs[w].get());
        }
        ctx.gate.arrive();
    }
}

/// Free-runs tiles `lo..hi` for the posted window — the multi-cycle
/// mirror of [`shard_phase`], with the per-cycle frozen delivery flags
/// replaced by each tile's stamped inbox, the lane by a per-cycle view
/// of the whole tile (core phase, home-timer phase, delivery phase, in
/// the serial `tick`/`mem.tick` order), and the single-cycle latch by a
/// cycle-stamped one.
///
/// Inactive tiles are settled in closed form: a tile is only marked
/// inactive when nothing can reach it and its core cannot act inside
/// the window, so its whole contribution is `window` park-steps of the
/// right flavor (or nothing at all, when the core has halted).
///
/// # Safety
///
/// Caller must uphold the [`EpochCtx`] phase discipline: `p` valid for
/// the current epoch, `lo..hi` disjoint from every concurrent caller's
/// range, `out` exclusively owned.
pub(crate) unsafe fn epoch_shard_phase<B: BarrierHw, S: TraceSink>(
    p: &EpochPtrs<B, S>,
    lo: usize,
    hi: usize,
    out: &mut EpochWorkerOut,
) {
    let tracer = &*p.tracer;
    let end = p.start + p.window;
    for i in lo..hi {
        if !*p.tile_active.add(i) {
            if p.active_set {
                let parked = &*p.parked.add(i);
                let miss_parked = &*p.miss_parked.add(i);
                if parked.is_some() || miss_parked.is_some() {
                    out.sched.parked_steps += p.window;
                } else if (*p.spin_parked.add(i)).is_some() {
                    out.sched.spin_parked_steps += p.window;
                }
            }
            continue;
        }
        let core = &mut *p.cores.add(i);
        let prog = &*p.progs.add(i);
        let mut tile = p.tiles.tile(i);
        // A fresh shadow per tile: `set_now` must be monotone, and each
        // tile walks the window on its own.
        let mut gl = GlineShadow::new(&*p.gline, std::mem::take(&mut out.scratch));
        let parked = &mut *p.parked.add(i);
        let spin_parked = &mut *p.spin_parked.add(i);
        let miss_parked = &mut *p.miss_parked.add(i);
        for now in p.start..end {
            gl.set_now(now);
            // Phase A — the core, a verbatim mirror of the serial
            // per-core ladder. The inbox front is this cycle's delivery
            // predicate: pushes from this very cycle stamp `now` and
            // mature at `now + 1`, so the predicate is stable across
            // the whole cycle, exactly like the serial frozen flags.
            let delivery = tile.has_delivery(now);
            if p.active_set {
                'core: {
                    if let Some((wake, _)) = *parked {
                        if now < wake {
                            out.sched.parked_steps += 1;
                            break 'core;
                        }
                        let (_, anchor) = parked.take().expect("checked above");
                        core.ff_stall(now - anchor);
                    }
                    if let Some((plan, anchor)) = *spin_parked {
                        if !delivery {
                            out.sched.spin_parked_steps += 1;
                            break 'core;
                        }
                        *spin_parked = None;
                        let mut lane = tile.lane(now);
                        core.ff_replay(plan, now, anchor, &mut lane);
                    }
                    if let Some(anchor) = *miss_parked {
                        if !delivery {
                            out.sched.parked_steps += 1;
                            break 'core;
                        }
                        *miss_parked = None;
                        core.ff_stall(now - anchor);
                    }
                    if core.halted() {
                        break 'core;
                    }
                    let mut lane = tile.lane(now);
                    if core.waiting_on_unscheduled_resp(&lane) && !delivery {
                        debug_assert!(parked.is_none() && spin_parked.is_none());
                        *miss_parked = Some(now);
                        out.sched.parked_steps += 1;
                        break 'core;
                    }
                    if !S::ENABLED && !delivery {
                        if let Some(plan) = core.park_spin(prog, &lane, now) {
                            debug_assert!(parked.is_none());
                            *spin_parked = Some((plan, now));
                            out.sched.spin_parked_steps += 1;
                            break 'core;
                        }
                    }
                    out.sched.core_steps += 1;
                    core.step(prog, &mut lane, &mut gl, now, tracer);
                    if let Some(wake) = core.park_until(&lane) {
                        if wake > now + 1 {
                            *parked = Some((wake, now + 1));
                        }
                    }
                }
            } else {
                if !core.halted() {
                    out.sched.core_steps += 1;
                }
                let mut lane = tile.lane(now);
                core.step(prog, &mut lane, &mut gl, now, tracer);
            }
            tile.route(now, PHASE_CORE);
            // Phase B — the home bank's timers (serial `mem.tick`'s
            // busy-homes pass; an idle bank's tick is a no-op there,
            // and its visit is not counted).
            if tile.home_busy() {
                out.home_visits += 1;
                tile.tick_home(now);
            }
            // Phase C — inbox deliveries due this cycle (serial
            // `mem.tick`'s delivery pass).
            if tile.deliver(now) {
                out.delivery_visits += 1;
            }
        }
        let mut writes = gl.into_writes();
        out.latch.append(&mut writes);
        out.scratch = writes;
    }
}
