//! The runtime library: synchronization routines emitted as ISA code.
//!
//! Three barrier implementations, matching the paper's §4.3 taxonomy:
//!
//! * **GL** — the proposed hardware barrier: write `bar_reg`, spin on it
//!   (Figure 3 of the paper). All the work happens in the G-line network.
//! * **CSW** — centralized software barrier: a shared sense-reversal
//!   counter updated with `fetch&add`; every core spins on one flag.
//! * **DSW** — distributed software barrier: a binary combining tree of
//!   counters; cores spin on per-node flags, the last arriver climbs.
//!
//! Plus test-and-test&set locks for the lock-heavy workloads.
//!
//! Register conventions (callers must respect them):
//! * `r20` holds the core's barrier sense and must be preserved across
//!   the whole program (initialize to 0 by doing nothing — registers
//!   reset to 0).
//! * `r21`–`r27` are runtime scratch, clobbered by every emitted routine.

use sim_base::ids::WORD_BYTES;
use sim_isa::inst::Region;
use sim_isa::{ProgBuilder, Reg};

/// Scratch registers used by the emitted routines.
const SENSE: Reg = Reg(20);
const T1: Reg = Reg(21);
const T2: Reg = Reg(22);
const T3: Reg = Reg(23);
const T4: Reg = Reg(24);
const T5: Reg = Reg(25);

/// Which barrier implementation to emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BarrierKind {
    /// The paper's G-line hardware barrier.
    Gl,
    /// Centralized sense-reversal software barrier.
    Csw,
    /// Binary combining-tree (distributed) software barrier.
    Dsw,
}

impl BarrierKind {
    /// The paper's label for this implementation.
    pub fn label(self) -> &'static str {
        match self {
            BarrierKind::Gl => "GL",
            BarrierKind::Csw => "CSW",
            BarrierKind::Dsw => "DSW",
        }
    }

    /// All three implementations.
    pub const ALL: [BarrierKind; 3] = [BarrierKind::Gl, BarrierKind::Csw, BarrierKind::Dsw];
}

/// Bytes separating the synchronization variables (one cache line each,
/// so counters and flags never falsely share).
const LINE: u64 = 64;

/// Arity of each combining-tree node, level by level (level 0 groups the
/// cores). An odd count at any level yields a trailing arity-1 node.
pub fn tree_levels(n: usize) -> Vec<Vec<u32>> {
    assert!(n >= 1);
    let mut levels = Vec::new();
    let mut width = n;
    while width > 1 {
        let nodes = width.div_ceil(2);
        let mut arities = vec![2u32; nodes];
        if width % 2 == 1 {
            arities[nodes - 1] = 1;
        }
        levels.push(arities);
        width = nodes;
    }
    levels
}

/// The memory plan of one barrier instance.
#[derive(Clone, Debug)]
pub struct BarrierEnv {
    /// Implementation.
    pub kind: BarrierKind,
    /// Number of participating cores.
    pub n_cores: usize,
    /// Base byte address of the barrier's shared variables.
    pub base: u64,
    /// Combining-tree shape (empty for GL/CSW).
    levels: Vec<Vec<u32>>,
    /// Node-id offset of each tree level.
    level_off: Vec<usize>,
}

impl BarrierEnv {
    /// Plans a barrier of `kind` for `n_cores` cores with its shared
    /// variables at `base` (must be cache-line aligned).
    pub fn new(kind: BarrierKind, n_cores: usize, base: u64) -> BarrierEnv {
        assert!(n_cores >= 1);
        assert_eq!(base % LINE, 0, "barrier variables must be line-aligned");
        let levels = if kind == BarrierKind::Dsw {
            tree_levels(n_cores)
        } else {
            Vec::new()
        };
        let mut level_off = Vec::with_capacity(levels.len());
        let mut off = 0usize;
        for l in &levels {
            level_off.push(off);
            off += l.len();
        }
        BarrierEnv {
            kind,
            n_cores,
            base,
            levels,
            level_off,
        }
    }

    /// Bytes of shared memory the barrier occupies starting at `base`.
    pub fn data_size(&self) -> u64 {
        match self.kind {
            BarrierKind::Gl => 0,
            // counter line + flag line + lock line.
            BarrierKind::Csw => 3 * LINE,
            // two lines (count + flag) per tree node.
            BarrierKind::Dsw => {
                2 * LINE * self.levels.iter().map(Vec::len).sum::<usize>().max(1) as u64
            }
        }
    }

    /// Number of combining-tree levels (0 for GL/CSW).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    fn node_count_addr(&self, level: usize, idx: usize) -> u64 {
        self.base + (self.level_off[level] + idx) as u64 * 2 * LINE
    }

    fn node_flag_addr(&self, level: usize, idx: usize) -> u64 {
        self.node_count_addr(level, idx) + LINE
    }

    /// Emits one barrier episode for `core`. `uniq` must be unique per
    /// emission site (it namespaces the labels).
    pub fn emit(&self, b: &mut ProgBuilder, core: usize, uniq: &str) {
        assert!(core < self.n_cores);
        b.region(Region::Barrier);
        match self.kind {
            BarrierKind::Gl => self.emit_gl(b, uniq),
            BarrierKind::Csw => self.emit_csw(b, uniq),
            BarrierKind::Dsw => self.emit_dsw(b, core, uniq),
        }
        b.region(Region::Normal);
    }

    /// Figure 3 of the paper: `mov 1, bar_reg; loop: bnz bar_reg, loop`.
    fn emit_gl(&self, b: &mut ProgBuilder, uniq: &str) {
        let spin = format!("gl_spin_{uniq}");
        b.li(T1, 1)
            .barw(T1)
            .label(&spin)
            .barr(T2)
            .bne(T2, Reg::ZERO, &spin);
    }

    /// The paper's CSW: a *lock-based* centralized sense-reversal
    /// barrier. Every core acquires one test&set lock to increment the
    /// shared counter — under simultaneous arrival the lock handoffs
    /// cause the O(n²) invalidation storm that makes CSW the worst
    /// performer of Figure 5.
    fn emit_csw(&self, b: &mut ProgBuilder, uniq: &str) {
        if self.n_cores == 1 {
            return;
        }
        let counter = self.base;
        let flag = self.base + LINE;
        let lock = self.base + 2 * LINE;
        let acq = format!("csw_acq_{uniq}");
        let tst = format!("csw_tst_{uniq}");
        let got = format!("csw_got_{uniq}");
        let last = format!("csw_last_{uniq}");
        let wait = format!("csw_wait_{uniq}");
        let done = format!("csw_done_{uniq}");
        // sense = !sense
        b.alui(sim_isa::inst::AluOp::Xor, SENSE, SENSE, 1);
        // Acquire the central lock (test-and-test&set).
        b.li(T1, 1)
            .li(T5, lock as i64)
            .label(&acq)
            .amoswap(T2, T1, T5)
            .beq(T2, Reg::ZERO, &got)
            .label(&tst)
            .ld(T2, 0, T5)
            .bne(T2, Reg::ZERO, &tst)
            .jump(&acq)
            .label(&got);
        // count++ under the lock.
        b.li(T3, counter as i64)
            .ld(T2, 0, T3)
            .addi(T2, T2, 1)
            .li(T4, self.n_cores as i64)
            .beq(T2, T4, &last)
            .st(T2, 0, T3)
            .st(Reg::ZERO, 0, T5) // unlock
            .jump(&wait);
        // Last arriver: reset the counter and release everyone.
        b.label(&last)
            .st(Reg::ZERO, 0, T3)
            .li(T3, flag as i64)
            .st(SENSE, 0, T3)
            .st(Reg::ZERO, 0, T5) // unlock
            .jump(&done);
        // Busy-wait on the release flag (L1-local after one miss).
        b.label(&wait)
            .li(T3, flag as i64)
            .ld(T2, 0, T3)
            .bne(T2, SENSE, &wait)
            .label(&done);
    }

    fn emit_dsw(&self, b: &mut ProgBuilder, core: usize, uniq: &str) {
        if self.n_cores == 1 {
            return;
        }
        let nlev = self.levels.len();
        // sense = !sense
        b.alui(sim_isa::inst::AluOp::Xor, SENSE, SENSE, 1);
        // Climb: at each level, fetch&add the node counter; the last
        // arriver proceeds up, everyone else waits on the node flag.
        for level in 0..nlev {
            let idx = core >> (level + 1);
            let arity = self.levels[level][idx];
            let wait = format!("dsw_wait{level}_{uniq}");
            b.li(T1, 1)
                .li(T3, self.node_count_addr(level, idx) as i64)
                .amoadd(T2, T1, T3)
                .li(T4, (arity - 1) as i64)
                .bne(T2, T4, &wait);
        }
        // Root winner: release its whole path, top level first.
        b.jump(&format!("dsw_rel{}_{uniq}", nlev as i64 - 1));
        // Waiters: spin on the node flag, then release the levels they won.
        for level in 0..nlev {
            let idx = core >> (level + 1);
            let wait = format!("dsw_wait{level}_{uniq}");
            let spin = format!("dsw_spin{level}_{uniq}");
            b.label(&wait)
                .label(&spin)
                .li(T3, self.node_flag_addr(level, idx) as i64)
                .ld(T2, 0, T3)
                .bne(T2, SENSE, &spin)
                .jump(&format!("dsw_rel{}_{uniq}", level as i64 - 1));
        }
        // Release chains: rel_k releases node k (count reset before flag)
        // and falls through to rel_{k-1}; rel_{-1} is the exit.
        for level in (0..nlev).rev() {
            let idx = core >> (level + 1);
            b.label(&format!("dsw_rel{level}_{uniq}"))
                .li(T3, self.node_count_addr(level, idx) as i64)
                .st(Reg::ZERO, 0, T3)
                .li(T3, self.node_flag_addr(level, idx) as i64)
                .st(SENSE, 0, T3);
        }
        b.label(&format!("dsw_rel-1_{uniq}"));
    }
}

/// Emits a test-and-test&set lock acquisition on the word at
/// `lock_addr`. Clobbers `r21`–`r23`.
pub fn emit_lock(b: &mut ProgBuilder, lock_addr: u64, uniq: &str) {
    assert_eq!(lock_addr % WORD_BYTES, 0);
    let acq = format!("lk_acq_{uniq}");
    let tst = format!("lk_tst_{uniq}");
    let got = format!("lk_got_{uniq}");
    b.region(Region::Lock)
        .li(T1, 1)
        .li(T3, lock_addr as i64)
        .label(&acq)
        .amoswap(T2, T1, T3)
        .beq(T2, Reg::ZERO, &got)
        // Held: spin on a plain load (stays in L1 until invalidated).
        .label(&tst)
        .ld(T2, 0, T3)
        .bne(T2, Reg::ZERO, &tst)
        .jump(&acq)
        .label(&got)
        .region(Region::Normal);
}

/// Emits the matching release.
pub fn emit_unlock(b: &mut ProgBuilder, lock_addr: u64) {
    b.region(Region::Lock)
        .li(T3, lock_addr as i64)
        .st(Reg::ZERO, 0, T3)
        .region(Region::Normal);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::interp::RefCmp;
    use sim_isa::Program;

    #[test]
    fn tree_shapes() {
        assert!(tree_levels(1).is_empty());
        assert_eq!(tree_levels(2), vec![vec![2]]);
        assert_eq!(tree_levels(4), vec![vec![2, 2], vec![2]]);
        assert_eq!(tree_levels(5), vec![vec![2, 2, 1], vec![2, 1], vec![2]]);
        assert_eq!(tree_levels(32).len(), 5);
        let l32 = tree_levels(32);
        assert_eq!(l32[0].len(), 16);
        assert_eq!(l32[4], vec![2]);
    }

    #[test]
    fn env_sizes() {
        assert_eq!(BarrierEnv::new(BarrierKind::Gl, 8, 0).data_size(), 0);
        assert_eq!(BarrierEnv::new(BarrierKind::Csw, 8, 0).data_size(), 192);
        // 8 cores: 4 + 2 + 1 = 7 nodes × 128 bytes.
        assert_eq!(BarrierEnv::new(BarrierKind::Dsw, 8, 0).data_size(), 7 * 128);
    }

    /// Builds one per-core program: `iters` barrier episodes with a
    /// store of the episode number in between, then halt.
    fn barrier_program(env: &BarrierEnv, core: usize, iters: usize, out_addr: u64) -> Program {
        let mut b = ProgBuilder::new();
        for it in 0..iters {
            // Work: record the episode we think we're in.
            b.li(Reg(1), it as i64 + 1);
            b.li(Reg(2), out_addr as i64 + core as i64 * 8);
            b.st(Reg(1), 0, Reg(2));
            env.emit(&mut b, core, &format!("it{it}"));
        }
        b.halt();
        b.build()
    }

    /// Runs `n` cores through `iters` barrier episodes on the idealized
    /// reference machine and checks that no core ever observes a peer
    /// more than one episode behind after the barrier.
    fn check_on_refcmp(kind: BarrierKind, n: usize, iters: usize) {
        let data_base = 4096u64;
        let env = BarrierEnv::new(kind, n, data_base);
        let out_addr = data_base + env.data_size().max(64) + 64;
        let progs: Vec<Program> = (0..n)
            .map(|c| barrier_program(&env, c, iters, out_addr))
            .collect();
        let refs: Vec<&Program> = progs.iter().collect();
        let mem_words = ((out_addr + n as u64 * 8) / 8 + 8) as usize;
        let mut cmp = RefCmp::new(n, mem_words);
        // Instrumented run: after every round where some core is right
        // after a barrier, peers' episode stamps may not lag.
        cmp.run(&refs, 10_000_000).unwrap();
        for c in 0..n {
            assert_eq!(
                cmp.word(out_addr + c as u64 * 8),
                iters as u64,
                "core {c} fell behind"
            );
        }
    }

    #[test]
    fn csw_barrier_runs_on_reference_machine() {
        for n in [2usize, 3, 4, 8] {
            check_on_refcmp(BarrierKind::Csw, n, 5);
        }
    }

    #[test]
    fn dsw_barrier_runs_on_reference_machine() {
        for n in [2usize, 3, 5, 8, 16] {
            check_on_refcmp(BarrierKind::Dsw, n, 5);
        }
    }

    #[test]
    fn gl_barrier_runs_on_reference_machine() {
        // RefCmp models bar_reg with idealized completion.
        for n in [2usize, 4] {
            check_on_refcmp(BarrierKind::Gl, n, 5);
        }
    }

    #[test]
    fn lock_emission_assembles() {
        let mut b = ProgBuilder::new();
        emit_lock(&mut b, 256, "a");
        emit_unlock(&mut b, 256);
        b.halt();
        let p = b.build();
        assert!(p.len() > 8);
    }

    #[test]
    fn locks_provide_mutual_exclusion_on_reference_machine() {
        // 4 cores increment a shared counter 50 times each under a lock
        // (load; add; store — not atomic without the lock).
        let lock = 1024u64;
        let counter = 2048u64;
        let n = 4;
        let progs: Vec<Program> = (0..n)
            .map(|_| {
                let mut b = ProgBuilder::new();
                b.li(Reg(10), 50);
                b.label("loop");
                emit_lock(&mut b, lock, "l");
                b.li(Reg(3), counter as i64)
                    .ld(Reg(4), 0, Reg(3))
                    .addi(Reg(4), Reg(4), 1)
                    .st(Reg(4), 0, Reg(3));
                emit_unlock(&mut b, lock);
                b.addi(Reg(10), Reg(10), -1);
                b.bne(Reg(10), Reg::ZERO, "loop");
                b.halt();
                b.build()
            })
            .collect();
        let refs: Vec<&Program> = progs.iter().collect();
        let mut cmp = RefCmp::new(n, 512);
        cmp.run(&refs, 10_000_000).unwrap();
        assert_eq!(cmp.word(counter), 200);
    }
}
