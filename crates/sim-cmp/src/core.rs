//! The in-order core pipeline model.
//!
//! Issue model (Table 1: "in-order 2-way"): up to `issue_width` simple
//! instructions retire per cycle; a data-memory instruction issues its
//! request and blocks the core until the hierarchy answers; `busy n`
//! occupies the pipeline for `n` cycles.
//!
//! Every non-halted core charges exactly one cycle per cycle to a
//! Figure-6 category, decided by its architectural *region* (set by the
//! runtime library's `region` markers) and its activity:
//!
//! * region `barrier` → `Barrier`, region `lock` → `Lock`;
//! * otherwise: stalled on a load → `Read`, on a store/atomic → `Write`,
//!   else `Busy`.

use crate::replay::CoreProg;
use gline_core::BarrierHw;
use sim_base::stats::{TimeBreakdown, TimeCat};
use sim_base::trace::{Event, TraceSink, Tracer};
use sim_base::{CoreId, Cycle};
use sim_isa::inst::{Inst, Region};
use sim_isa::reg::{Reg, NUM_REGS};
use sim_isa::Program;
use sim_mem::{CoreMem, CoreReq, CoreResp};
use sim_trace::{CoreTrace, Effect, TraceOp};

/// The Figure-6 category a region's cycles default to when not stalled.
fn region_cat(r: Region) -> TimeCat {
    match r {
        Region::Barrier => TimeCat::Barrier,
        Region::Lock => TimeCat::Lock,
        Region::Normal => TimeCat::Busy,
    }
}

/// What the core is doing this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Can issue instructions.
    Ready,
    /// Waiting for the memory hierarchy; `rd` receives the result.
    WaitMem {
        /// Destination register for the response (r0 for stores).
        rd: Reg,
        /// Stall category while waiting.
        cat: TimeCat,
    },
    /// Executing a `busy` block until the given cycle.
    BusyUntil {
        /// First cycle at which issue resumes.
        until: Cycle,
    },
    /// `halt` executed.
    Halted,
}

/// How a core constrains a fast-forward (cycle-skip) decision. See
/// [`Core::ff_classify`].
#[derive(Clone, Copy, Debug)]
pub enum FfClass {
    /// The core imposes no wake-up of its own: it is halted, or it waits
    /// on a miss whose completion the memory system already schedules.
    NoConstraint,
    /// The core's state changes at this cycle (busy block expires, or a
    /// memory response becomes ready).
    WakeAt(Cycle),
    /// The core is inside a recognized spin loop and can be replayed in
    /// closed form over any skipped span.
    Spin(SpinPlan),
    /// The core does real work this cycle — no skipping.
    Blocked,
}

/// A recognized spin loop, captured at a skip decision point. All of the
/// loop's per-cycle effects (retires, breakdown charges, L1 hits) are
/// closed-form, so [`Core::ff_replay`] applies `k` cycles of it in O(1).
#[derive(Clone, Copy, Debug)]
pub struct SpinPlan {
    /// Program counter of the first loop-body instruction.
    top: usize,
    kind: SpinKind,
}

impl SpinPlan {
    /// The latest cycle a whole-machine skip may jump to under this
    /// plan. Exec-mode spins impose no bound of their own (their probed
    /// value is frozen until an external event the skip clamps on);
    /// replay-mode spins carry a recorded iteration budget, after which
    /// the exit group must execute densely. For genuine recordings the
    /// budget outlasts every delivery-free span, so the clamp never
    /// binds — it exists so a hand-built trace file cannot drive the
    /// replay cursor past its op.
    pub(crate) fn max_target(&self, now: Cycle) -> Option<Cycle> {
        match self.kind {
            SpinKind::Gline { .. } | SpinKind::Mem { .. } => None,
            SpinKind::RGline { left } => Some(now + left),
            SpinKind::RMem { phase_b, left, .. } => Some(now + 2 * left - phase_b as u64),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum SpinKind {
    /// `top: barr rd ; b<cond> …, top` — one iteration per cycle, no
    /// memory interaction; `value` is the (frozen) `bar_reg` contents.
    Gline { rd: Reg, value: u64 },
    /// A two-cycle load/branch spin: `top: [li a, imm ;] ld rd ;
    /// b<cond> …, top`, hitting the L1 on `addr` every iteration.
    Mem {
        addr: u64,
        rd: Reg,
        /// The `li` overlay of the three-instruction form.
        li: Option<(Reg, u64)>,
        /// Dynamic instructions retired by one full iteration.
        iter_retires: u64,
        /// Captured mid-iteration: the pending response and back-branch
        /// still have to execute before the next full iteration.
        phase_b: bool,
        /// The (frozen) value every iteration loads.
        value: u64,
    },
    /// Replay-mode G-line spin: the core sits on a
    /// [`TraceOp::GlineSpin`] op with `left` iterations remaining at
    /// capture — one cycle and two retires each, no machine
    /// interaction.
    RGline { left: u64 },
    /// Replay-mode memory flag spin: the core sits on a
    /// [`TraceOp::MemSpin`] op — the same two-cycle iteration structure
    /// as `Mem`, with the iteration budget recorded instead of derived
    /// from a frozen value.
    RMem {
        addr: u64,
        /// Dynamic instructions retired by one full iteration.
        iter_retires: u64,
        /// Captured mid-iteration (resolve/branch phase pending).
        phase_b: bool,
        /// Iterations remaining at capture.
        left: u64,
    },
}

/// One simulated core.
#[derive(Clone, Debug)]
pub struct Core {
    id: CoreId,
    regs: [u64; NUM_REGS],
    pc: usize,
    status: Status,
    region: Region,
    issue_width: u8,
    breakdown: TimeBreakdown,
    retired: u64,
    gl_barriers: u64,
    /// Barrier context used by `barw`/`barr` (set by `barctx`).
    bar_ctx: usize,
    /// Cycle the current memory stall began (tracing only).
    wait_since: Cycle,
    /// Replay cursor: index of the current trace op (replay mode only).
    rp_op: usize,
    /// Iterations left on the current compressed spin op.
    rp_spin: u64,
    /// Mid mem-spin iteration: the resolve/branch phase is pending.
    rp_phase_b: bool,
}

impl Core {
    /// A reset core.
    pub fn new(id: CoreId, issue_width: u8) -> Core {
        assert!(issue_width >= 1);
        Core {
            id,
            regs: [0; NUM_REGS],
            pc: 0,
            status: Status::Ready,
            region: Region::Normal,
            issue_width,
            breakdown: TimeBreakdown::new(),
            retired: 0,
            gl_barriers: 0,
            bar_ctx: 0,
            wait_since: 0,
            rp_op: 0,
            rp_spin: 0,
            rp_phase_b: false,
        }
    }

    /// Current program counter (recording snapshot).
    pub(crate) fn pc(&self) -> usize {
        self.pc
    }

    /// Current architectural region (recording snapshot).
    pub(crate) fn cur_region(&self) -> Region {
        self.region
    }

    /// Replay cursor position (epoch halt-bound computation).
    pub(crate) fn rp_op(&self) -> usize {
        self.rp_op
    }

    /// End of the current `busy` block, if the core is inside one.
    pub(crate) fn busy_until(&self) -> Option<Cycle> {
        match self.status {
            Status::BusyUntil { until } => Some(until),
            _ => None,
        }
    }

    /// The core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// True once `halt` has executed (or the program ran out).
    pub fn halted(&self) -> bool {
        self.status == Status::Halted
    }

    /// Figure-6 cycle breakdown so far.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Dynamic instructions retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// `barw` arrivals executed (G-line barrier episodes entered).
    pub fn gl_barriers(&self) -> u64 {
        self.gl_barriers
    }

    /// Register read (`r0` is zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.index() == 0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Register write (`r0` ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }

    /// The category this core's current cycle belongs to.
    pub(crate) fn category(&self) -> TimeCat {
        match self.region {
            Region::Barrier => TimeCat::Barrier,
            Region::Lock => TimeCat::Lock,
            Region::Normal => match self.status {
                Status::WaitMem { cat, .. } => cat,
                _ => TimeCat::Busy,
            },
        }
    }

    /// Runs one cycle. Interacts with the memory hierarchy (the whole
    /// [`sim_mem::MemorySystem`] serially, or a [`sim_mem::LaneMem`]
    /// shard view in the parallel engine — anything implementing
    /// [`CoreMem`]) and the G-line barrier hardware (flat, clustered or
    /// TDM — anything implementing [`BarrierHw`]); must be called
    /// before their `tick`s.
    pub fn step<B: BarrierHw + ?Sized, M: CoreMem, S: TraceSink>(
        &mut self,
        prog: &CoreProg,
        mem: &mut M,
        gline: &mut B,
        now: Cycle,
        tracer: &Tracer<S>,
    ) {
        if self.halted() {
            return;
        }
        let (retired_before, pc_before, region_before) = (self.retired, self.pc, self.region);
        match prog {
            CoreProg::Exec(p) => self.step_inner(p, mem, gline, now, tracer),
            CoreProg::Replay(t) => self.replay_inner(t, mem, gline, now, tracer),
        }
        if S::ENABLED {
            let id = self.id;
            let n = self.retired - retired_before;
            if n > 0 {
                tracer.emit(now, || Event::Retire {
                    core: id,
                    pc: pc_before as u32,
                    count: n.min(u8::MAX as u64) as u8,
                });
            }
            if self.region != region_before {
                let cat = region_cat(self.region);
                tracer.emit(now, || Event::Region { core: id, cat });
            }
        }
    }

    fn step_inner<B: BarrierHw + ?Sized, M: CoreMem, S: TraceSink>(
        &mut self,
        prog: &Program,
        mem: &mut M,
        gline: &mut B,
        now: Cycle,
        tracer: &Tracer<S>,
    ) {
        // Charge this cycle by the status it *enters* with, so a 1-cycle
        // L1 hit still attributes one cycle to Read/Write.
        self.breakdown.add(self.category(), 1);

        // Resolve a completed memory stall; the fill latency was already
        // charged by the hierarchy, so issue resumes this cycle.
        if let Status::WaitMem { rd, cat } = self.status {
            if let Some(resp) = mem.poll(self.id) {
                let v = match resp {
                    CoreResp::LoadValue(v) | CoreResp::AmoOld(v) => v,
                    CoreResp::StoreDone => 0,
                };
                self.set_reg(rd, v);
                self.status = Status::Ready;
                if S::ENABLED {
                    let id = self.id;
                    let since = self.wait_since;
                    tracer.emit(now, || Event::Stall {
                        core: id,
                        cat,
                        cycles: now.saturating_sub(since),
                    });
                }
            }
        }
        if let Status::BusyUntil { until } = self.status {
            if now >= until {
                self.status = Status::Ready;
            }
        }

        if self.status != Status::Ready {
            return;
        }

        let mut slots = self.issue_width;
        while slots > 0 {
            slots -= 1;
            let Some(inst) = prog.fetch(self.pc) else {
                self.status = Status::Halted;
                return;
            };
            match inst {
                Inst::Li { rd, imm } => {
                    self.set_reg(rd, imm as u64);
                    self.pc += 1;
                }
                Inst::Alu { op, rd, rs1, rs2 } => {
                    let v = op.apply(self.reg(rs1), self.reg(rs2));
                    self.set_reg(rd, v);
                    self.pc += 1;
                }
                Inst::AluI { op, rd, rs1, imm } => {
                    let v = op.apply(self.reg(rs1), imm as u64);
                    self.set_reg(rd, v);
                    self.pc += 1;
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    if cond.taken(self.reg(rs1), self.reg(rs2)) {
                        self.pc = target;
                        // A taken branch redirects fetch: end the issue
                        // group (no same-cycle issue past a taken branch).
                        self.retired += 1;
                        self.check_pc(prog);
                        return;
                    }
                    self.pc += 1;
                }
                Inst::Jal { rd, target } => {
                    self.set_reg(rd, (self.pc + 1) as u64);
                    self.pc = target;
                    self.retired += 1;
                    self.check_pc(prog);
                    return;
                }
                Inst::Jalr { rd, rs1 } => {
                    let t = self.reg(rs1) as usize;
                    self.set_reg(rd, (self.pc + 1) as u64);
                    self.pc = t;
                    self.retired += 1;
                    self.check_pc(prog);
                    return;
                }
                Inst::Ld { rd, rs1, off } => {
                    let addr = self.reg(rs1).wrapping_add(off as u64);
                    mem.request(self.id, CoreReq::Load { addr });
                    self.status = Status::WaitMem {
                        rd,
                        cat: TimeCat::Read,
                    };
                    self.wait_since = now;
                    self.pc += 1;
                    self.retired += 1;
                    return;
                }
                Inst::St { rs2, rs1, off } => {
                    let addr = self.reg(rs1).wrapping_add(off as u64);
                    let value = self.reg(rs2);
                    mem.request(self.id, CoreReq::Store { addr, value });
                    self.status = Status::WaitMem {
                        rd: Reg::ZERO,
                        cat: TimeCat::Write,
                    };
                    self.wait_since = now;
                    self.pc += 1;
                    self.retired += 1;
                    return;
                }
                Inst::Amo { op, rd, rs1, rs2 } => {
                    let addr = self.reg(rs1);
                    let operand = self.reg(rs2);
                    mem.request(self.id, CoreReq::Amo { addr, op, operand });
                    self.status = Status::WaitMem {
                        rd,
                        cat: TimeCat::Write,
                    };
                    self.wait_since = now;
                    self.pc += 1;
                    self.retired += 1;
                    return;
                }
                Inst::Busy { cycles } => {
                    self.pc += 1;
                    self.retired += 1;
                    if cycles > 1 {
                        // This cycle counts as the first of the block.
                        self.status = Status::BusyUntil {
                            until: now + cycles as u64,
                        };
                        return;
                    }
                    // busy 0/1: consumes this issue group only.
                    return;
                }
                Inst::BarWrite { rs1 } => {
                    let v = self.reg(rs1);
                    assert!(v != 0, "core {}: barw with a zero value", self.id);
                    gline.write_bar_reg(self.id, self.bar_ctx, v);
                    self.gl_barriers += 1;
                    self.pc += 1;
                }
                Inst::BarRead { rd } => {
                    let v = gline.bar_reg(self.id, self.bar_ctx);
                    self.set_reg(rd, v);
                    self.pc += 1;
                }
                Inst::BarCtx { ctx } => {
                    assert!(
                        (ctx as usize) < gline.num_contexts(),
                        "core {}: barctx {ctx} but the network has {} context(s)",
                        self.id,
                        gline.num_contexts()
                    );
                    self.bar_ctx = ctx as usize;
                    self.pc += 1;
                }
                Inst::SetRegion { region } => {
                    self.region = region;
                    self.pc += 1;
                }
                Inst::Nop => {
                    self.pc += 1;
                }
                Inst::Halt => {
                    self.status = Status::Halted;
                    self.retired += 1;
                    return;
                }
            }
            self.retired += 1;
        }
    }

    // ------------------------------------------------------------------
    // Trace-driven replay (`DESIGN.md` §12): consume recorded issue
    // groups against the live memory hierarchy and barrier network.
    // The status machine — stall resolution, busy blocks, the
    // one-cycle-one-charge accounting — mirrors `step_inner` exactly;
    // only the "what does this cycle execute" question is answered by
    // the trace cursor instead of fetch/decode.
    // ------------------------------------------------------------------

    /// Points the replay cursor's derived state (pc, spin budget) at
    /// the current op. Called at construction and whenever the cursor
    /// advances with the trace in hand.
    fn set_cursor(&mut self, trace: &CoreTrace) {
        match trace.ops.get(self.rp_op) {
            Some(TraceOp::Step(s)) => {
                self.pc = s.pc as usize;
                self.rp_spin = 0;
            }
            Some(TraceOp::GlineSpin { pc, iters }) => {
                self.pc = *pc as usize;
                self.rp_spin = *iters;
            }
            Some(TraceOp::MemSpin { pc, iters, .. }) => {
                self.pc = *pc as usize;
                self.rp_spin = *iters;
            }
            None => self.rp_spin = 0,
        }
        self.rp_phase_b = false;
    }

    /// Initializes the replay cursor on op 0 (replay-mode construction).
    pub(crate) fn prime_replay(&mut self, trace: &CoreTrace) {
        self.set_cursor(trace);
    }

    fn advance_op(&mut self, trace: &CoreTrace) {
        self.rp_op += 1;
        self.set_cursor(trace);
    }

    /// One replay-mode cycle — the trace-driven mirror of
    /// [`step_inner`](Self::step_inner).
    fn replay_inner<B: BarrierHw + ?Sized, M: CoreMem, S: TraceSink>(
        &mut self,
        trace: &CoreTrace,
        mem: &mut M,
        gline: &mut B,
        now: Cycle,
        tracer: &Tracer<S>,
    ) {
        self.breakdown.add(self.category(), 1);
        if let Status::WaitMem { rd: _, cat } = self.status {
            if mem.poll(self.id).is_some() {
                self.status = Status::Ready;
                if S::ENABLED {
                    let id = self.id;
                    let since = self.wait_since;
                    tracer.emit(now, || Event::Stall {
                        core: id,
                        cat,
                        cycles: now.saturating_sub(since),
                    });
                }
            }
        }
        if let Status::BusyUntil { until } = self.status {
            if now >= until {
                self.status = Status::Ready;
            }
        }
        if self.status != Status::Ready {
            return;
        }

        // Mid mem-spin: the pending resolve/branch phase retires the
        // back-branch and completes the iteration.
        if self.rp_phase_b {
            if let Some(TraceOp::MemSpin { pc, .. }) = trace.ops.get(self.rp_op) {
                self.retired += 1;
                self.pc = *pc as usize;
                self.rp_phase_b = false;
                self.rp_spin = self.rp_spin.saturating_sub(1);
                if self.rp_spin == 0 {
                    self.advance_op(trace);
                }
                return;
            }
            self.rp_phase_b = false;
        }
        let Some(op) = trace.ops.get(self.rp_op) else {
            // Ran off the end without a halt op (hand-built trace):
            // treat as halted rather than livelocking the machine.
            self.status = Status::Halted;
            return;
        };
        match op {
            TraceOp::GlineSpin { pc, .. } => {
                // One full iteration (barr + taken branch) per cycle.
                self.retired += 2;
                self.pc = *pc as usize;
                self.rp_spin = self.rp_spin.saturating_sub(1);
                if self.rp_spin == 0 {
                    self.advance_op(trace);
                }
            }
            TraceOp::MemSpin {
                pc,
                addr,
                iter_retires,
                ..
            } => {
                // Issue phase: the probing load goes to the hierarchy;
                // the resolve phase runs when it answers (next cycle on
                // the L1 hit every recorded iteration was).
                mem.request(self.id, CoreReq::Load { addr: *addr });
                self.status = Status::WaitMem {
                    rd: Reg::ZERO,
                    cat: TimeCat::Read,
                };
                self.wait_since = now;
                self.retired += *iter_retires as u64 - 1;
                self.pc = *pc as usize + *iter_retires as usize - 1;
                self.rp_phase_b = true;
            }
            TraceOp::Step(s) => {
                self.retired += s.retires as u64;
                if let Some(r) = s.region {
                    self.region = r;
                }
                for &(ctx, v) in &s.bar_writes {
                    self.gl_barriers += 1;
                    gline.write_bar_reg(self.id, ctx as usize, v);
                }
                match s.effect {
                    Effect::None => {}
                    Effect::Load { addr } => {
                        mem.request(self.id, CoreReq::Load { addr });
                        self.status = Status::WaitMem {
                            rd: Reg::ZERO,
                            cat: TimeCat::Read,
                        };
                        self.wait_since = now;
                    }
                    Effect::Store { addr, value } => {
                        mem.request(self.id, CoreReq::Store { addr, value });
                        self.status = Status::WaitMem {
                            rd: Reg::ZERO,
                            cat: TimeCat::Write,
                        };
                        self.wait_since = now;
                    }
                    Effect::Amo { addr, op, operand } => {
                        mem.request(self.id, CoreReq::Amo { addr, op, operand });
                        self.status = Status::WaitMem {
                            rd: Reg::ZERO,
                            cat: TimeCat::Write,
                        };
                        self.wait_since = now;
                    }
                    Effect::Busy { cycles } => {
                        self.status = Status::BusyUntil {
                            until: now + cycles as u64,
                        };
                    }
                    Effect::Halt => {
                        self.status = Status::Halted;
                    }
                }
                self.advance_op(trace);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fast-forward support (quiescence-aware cycle skipping).
    //
    // The skip scheduler may only jump over cycles whose effects it can
    // reproduce exactly. For a core that means either (a) it is parked —
    // busy block or memory stall, where each skipped cycle only charges
    // one breakdown category — or (b) it is executing a recognized spin
    // loop whose per-cycle effects are closed-form. Everything else
    // blocks skipping.
    // ------------------------------------------------------------------

    /// How this core constrains a skip decision at cycle `now` (i.e.
    /// immediately before the `step` for cycle `now` would run).
    pub fn ff_classify<B: BarrierHw + ?Sized, M: CoreMem>(
        &self,
        prog: &CoreProg,
        mem: &M,
        gline: &B,
        now: Cycle,
    ) -> FfClass {
        match prog {
            CoreProg::Exec(p) => self.ff_classify_exec(p, mem, gline, now),
            CoreProg::Replay(t) => self.ff_classify_replay(t, mem, now),
        }
    }

    fn ff_classify_exec<B: BarrierHw + ?Sized, M: CoreMem>(
        &self,
        prog: &Program,
        mem: &M,
        gline: &B,
        now: Cycle,
    ) -> FfClass {
        match self.status {
            Status::Halted => FfClass::NoConstraint,
            Status::BusyUntil { until } => {
                if until <= now {
                    // Resumes issue this very cycle.
                    FfClass::Blocked
                } else {
                    FfClass::WakeAt(until)
                }
            }
            Status::WaitMem { rd, cat } => match mem.resp_ready_at(self.id) {
                // Miss in flight: the memory system's own `next_event`
                // (home timers, NoC arrivals) provides the wake-up.
                None => FfClass::NoConstraint,
                Some(r) if r > now => FfClass::WakeAt(r),
                Some(_) => {
                    // The response resolves this cycle. If it is a load
                    // feeding a taken branch back into a recognized spin
                    // loop, the core is mid-iteration of that spin.
                    if cat == TimeCat::Read {
                        if let Some(plan) = self.match_phase_b(prog, mem, rd) {
                            return FfClass::Spin(plan);
                        }
                    }
                    FfClass::Blocked
                }
            },
            Status::Ready => match self.match_phase_a(prog, mem, gline) {
                Some(plan) => FfClass::Spin(plan),
                None => FfClass::Blocked,
            },
        }
    }

    /// Replay-mode skip classification: the trace cursor already says
    /// whether the core is inside a compressed spin, so no program
    /// inspection is needed — only the live-memory preconditions
    /// (L1-resident line, frozen value) that make closed-form replay
    /// sound.
    fn ff_classify_replay<M: CoreMem>(&self, trace: &CoreTrace, mem: &M, now: Cycle) -> FfClass {
        match self.status {
            Status::Halted => FfClass::NoConstraint,
            Status::BusyUntil { until } => {
                if until <= now {
                    FfClass::Blocked
                } else {
                    FfClass::WakeAt(until)
                }
            }
            Status::WaitMem { rd: _, cat } => match mem.resp_ready_at(self.id) {
                None => FfClass::NoConstraint,
                Some(r) if r > now => FfClass::WakeAt(r),
                Some(_) => {
                    if cat == TimeCat::Read {
                        if let Some(plan) = self.replay_spin_b(trace, mem) {
                            return FfClass::Spin(plan);
                        }
                    }
                    FfClass::Blocked
                }
            },
            Status::Ready => match self.replay_spin_a(trace, mem, false) {
                Some(plan) => FfClass::Spin(plan),
                None => FfClass::Blocked,
            },
        }
    }

    /// Replay-mode spin plan with the core `Ready` at a compressed
    /// spin's loop top. With `mem_only`, only memory-probing spins are
    /// reported (the per-core park decision, which discards G-line
    /// plans anyway).
    fn replay_spin_a<M: CoreMem>(
        &self,
        trace: &CoreTrace,
        mem: &M,
        mem_only: bool,
    ) -> Option<SpinPlan> {
        if self.rp_spin == 0 || self.rp_phase_b {
            return None;
        }
        match trace.ops.get(self.rp_op)? {
            TraceOp::GlineSpin { pc, .. } if !mem_only => Some(SpinPlan {
                top: *pc as usize,
                kind: SpinKind::RGline { left: self.rp_spin },
            }),
            TraceOp::MemSpin {
                pc,
                addr,
                iter_retires,
                ..
            } => {
                // Future iterations must hit in the L1, exactly as the
                // recorded ones did.
                mem.spin_probe_load(self.id, *addr)?;
                Some(SpinPlan {
                    top: *pc as usize,
                    kind: SpinKind::RMem {
                        addr: *addr,
                        iter_retires: *iter_retires as u64,
                        phase_b: false,
                        left: self.rp_spin,
                    },
                })
            }
            _ => None,
        }
    }

    /// Replay-mode spin plan captured mid-iteration: the core is in
    /// `WaitMem` on a compressed mem-spin's probing load, with the
    /// response pending.
    fn replay_spin_b<M: CoreMem>(&self, trace: &CoreTrace, mem: &M) -> Option<SpinPlan> {
        if !self.rp_phase_b || self.rp_spin == 0 || mem.l1_busy(self.id) {
            return None;
        }
        let TraceOp::MemSpin {
            pc,
            addr,
            iter_retires,
            ..
        } = trace.ops.get(self.rp_op)?
        else {
            return None;
        };
        mem.peek_resp_load(self.id)?;
        mem.spin_line_value(self.id, *addr)?;
        Some(SpinPlan {
            top: *pc as usize,
            kind: SpinKind::RMem {
                addr: *addr,
                iter_retires: *iter_retires as u64,
                phase_b: true,
                left: self.rp_spin,
            },
        })
    }

    /// The per-tick park decision of the active-set scheduler: is this
    /// core inside a *memory-probing* spin it can be parked on?
    ///
    /// This is [`ff_classify`](Self::ff_classify) restricted to the
    /// plans the caller would keep — G-line spins are never parked
    /// per-core (the barrier release that ends them is not an L1
    /// delivery), so the full classifier wasted a barrier-register
    /// read and a branch evaluation per spinning core per tick just to
    /// produce a plan the caller discarded. Matching only the
    /// memory-probing shapes is bit-identical and much cheaper on
    /// G-line-bound workloads.
    pub(crate) fn park_spin<M: CoreMem>(
        &self,
        prog: &CoreProg,
        mem: &M,
        now: Cycle,
    ) -> Option<SpinPlan> {
        match prog {
            CoreProg::Exec(p) => match self.status {
                Status::Ready => match p.fetch(self.pc)? {
                    Inst::Ld { .. } | Inst::Li { .. } => self.match_phase_a_mem(p, mem),
                    _ => None,
                },
                Status::WaitMem {
                    rd,
                    cat: TimeCat::Read,
                } => {
                    match mem.resp_ready_at(self.id) {
                        Some(r) if r <= now => {}
                        _ => return None,
                    }
                    self.match_phase_b(p, mem, rd)
                }
                _ => None,
            },
            CoreProg::Replay(t) => match self.status {
                Status::Ready => self.replay_spin_a(t, mem, true),
                Status::WaitMem {
                    rd: _,
                    cat: TimeCat::Read,
                } => {
                    match mem.resp_ready_at(self.id) {
                        Some(r) if r <= now => {}
                        _ => return None,
                    }
                    self.replay_spin_b(t, mem)
                }
                _ => None,
            },
        }
    }

    /// Recognizes a spin loop with the core `Ready` at the loop top.
    fn match_phase_a<B: BarrierHw + ?Sized, M: CoreMem>(
        &self,
        prog: &Program,
        mem: &M,
        gline: &B,
    ) -> Option<SpinPlan> {
        let top = self.pc;
        match prog.fetch(top)? {
            // `top: barr rd ; b<cond> …, top` — one iteration per cycle
            // on a 2-wide core, no memory interaction.
            Inst::BarRead { rd } if self.issue_width >= 2 => {
                let Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } = prog.fetch(top + 1)?
                else {
                    return None;
                };
                if target != top {
                    return None;
                }
                let v = gline.bar_reg(self.id, self.bar_ctx);
                let rv = |r: Reg| {
                    if r.index() == 0 {
                        0
                    } else if r == rd {
                        v
                    } else {
                        self.reg(r)
                    }
                };
                cond.taken(rv(rs1), rv(rs2)).then_some(SpinPlan {
                    top,
                    kind: SpinKind::Gline { rd, value: v },
                })
            }
            _ => self.match_phase_a_mem(prog, mem),
        }
    }

    /// The memory-probing subset of [`match_phase_a`](Self::match_phase_a):
    /// flag-wait loops whose every iteration hits in the L1. Split out so
    /// the per-core park decision can match these shapes without touching
    /// the barrier network.
    fn match_phase_a_mem<M: CoreMem>(&self, prog: &Program, mem: &M) -> Option<SpinPlan> {
        let top = self.pc;
        match prog.fetch(top)? {
            // `top: ld rd, off(ra) ; b<cond> …, top` — two cycles per
            // iteration (issue the L1 hit, then resolve + branch).
            Inst::Ld { rd, rs1, off } => {
                let Inst::Branch {
                    cond,
                    rs1: b1,
                    rs2: b2,
                    target,
                } = prog.fetch(top + 1)?
                else {
                    return None;
                };
                if target != top {
                    return None;
                }
                let addr = self.reg(rs1).wrapping_add(off as u64);
                let v = mem.spin_probe_load(self.id, addr)?;
                let rv = |r: Reg| {
                    if r.index() == 0 {
                        0
                    } else if r == rd {
                        v
                    } else {
                        self.reg(r)
                    }
                };
                cond.taken(rv(b1), rv(b2)).then_some(SpinPlan {
                    top,
                    kind: SpinKind::Mem {
                        addr,
                        rd,
                        li: None,
                        iter_retires: 2,
                        phase_b: false,
                        value: v,
                    },
                })
            }
            // `top: li a, imm ; ld rd, off(a) ; b<cond> …, top` — the
            // CSW/DSW flag wait. Dual issue pairs the li with the ld, so
            // this is also a two-cycle iteration.
            Inst::Li { rd: a, imm } if self.issue_width >= 2 => {
                let Inst::Ld { rd, rs1, off } = prog.fetch(top + 1)? else {
                    return None;
                };
                let Inst::Branch {
                    cond,
                    rs1: b1,
                    rs2: b2,
                    target,
                } = prog.fetch(top + 2)?
                else {
                    return None;
                };
                if target != top {
                    return None;
                }
                // Address as seen after `li a, imm`.
                let base = if rs1 == a { imm as u64 } else { self.reg(rs1) };
                let addr = base.wrapping_add(off as u64);
                let v = mem.spin_probe_load(self.id, addr)?;
                // Branch registers as seen after the load (`rd` shadows
                // `a` if they alias).
                let rv = |r: Reg| {
                    if r.index() == 0 {
                        0
                    } else if r == rd {
                        v
                    } else if r == a {
                        imm as u64
                    } else {
                        self.reg(r)
                    }
                };
                cond.taken(rv(b1), rv(b2)).then_some(SpinPlan {
                    top,
                    kind: SpinKind::Mem {
                        addr,
                        rd,
                        li: Some((a, imm as u64)),
                        iter_retires: 3,
                        phase_b: false,
                        value: v,
                    },
                })
            }
            _ => None,
        }
    }

    /// Recognizes a spin loop captured mid-iteration: the core is in
    /// `WaitMem` with a load response pending, `pc` points at the loop's
    /// back-branch, and the branch (with the pending value) jumps back to
    /// a loop body this core would keep spinning in.
    fn match_phase_b<M: CoreMem>(&self, prog: &Program, mem: &M, rd: Reg) -> Option<SpinPlan> {
        if mem.l1_busy(self.id) {
            return None;
        }
        let (_, v) = mem.peek_resp_load(self.id)?;
        let Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } = prog.fetch(self.pc)?
        else {
            return None;
        };
        let rv = |r: Reg| {
            if r.index() == 0 {
                0
            } else if r == rd {
                v
            } else {
                self.reg(r)
            }
        };
        if !cond.taken(rv(rs1), rv(rs2)) {
            return None;
        }
        let top = target;
        let (addr, li, iter_retires) = match prog.fetch(top)? {
            Inst::Ld {
                rd: lrd,
                rs1: lr,
                off,
            } if self.pc == top + 1 && lrd == rd => {
                (self.reg(lr).wrapping_add(off as u64), None, 2)
            }
            Inst::Li { rd: a, imm } if self.pc == top + 2 && self.issue_width >= 2 => {
                let Inst::Ld {
                    rd: lrd,
                    rs1: lr,
                    off,
                } = prog.fetch(top + 1)?
                else {
                    return None;
                };
                if lrd != rd {
                    return None;
                }
                let base = if lr == a { imm as u64 } else { self.reg(lr) };
                (base.wrapping_add(off as u64), Some((a, imm as u64)), 3)
            }
            _ => return None,
        };
        // Future iterations must hit in the L1 and keep observing the
        // same (frozen) value; bail if the line is not resident or the
        // pending response somehow disagrees with it.
        if mem.spin_line_value(self.id, addr)? != v {
            return None;
        }
        Some(SpinPlan {
            top,
            kind: SpinKind::Mem {
                addr,
                rd,
                li,
                iter_retires,
                phase_b: true,
                value: v,
            },
        })
    }

    /// The first cycle at which this core can possibly do more than
    /// charge its current stall category, or `None` when it cannot be
    /// parked (it is ready, halted, or waiting on a miss whose
    /// completion cycle the memory system has not scheduled yet).
    ///
    /// Until that cycle, every `step` is provably a pure breakdown
    /// charge: a `WaitMem` step polls (getting `None` before the
    /// response's ready cycle) and returns; a `BusyUntil` step checks
    /// the expiry and returns. The active-set scheduler uses this to
    /// skip the core's steps entirely and charge the span lazily at
    /// wake-up (via [`ff_stall`](Self::ff_stall)), which is
    /// bit-identical because the status — and with it the charged
    /// category — cannot change while the core is parked.
    pub(crate) fn park_until<M: CoreMem>(&self, mem: &M) -> Option<Cycle> {
        match self.status {
            Status::BusyUntil { until } => Some(until),
            Status::WaitMem { .. } => mem.resp_ready_at(self.id),
            Status::Ready | Status::Halted => None,
        }
    }

    /// True when the core is stalled on a memory access whose response
    /// the L1 has not scheduled yet (the miss is still in flight in the
    /// protocol). Until a message reaches this tile, every `step` is
    /// provably a pure breakdown charge — `poll` keeps returning `None`
    /// because only a delivery can install the response (or service a
    /// deferred coherence message) — so the active-set scheduler parks
    /// the core on the delivery trigger instead of a wake cycle.
    pub(crate) fn waiting_on_unscheduled_resp<M: CoreMem>(&self, mem: &M) -> bool {
        matches!(self.status, Status::WaitMem { .. }) && mem.resp_ready_at(self.id).is_none()
    }

    /// Applies `k = target - now` skipped cycles of a parked core: each
    /// cycle only charges one breakdown category, exactly as `step`
    /// would.
    pub fn ff_stall(&mut self, k: u64) {
        debug_assert!(
            matches!(
                self.status,
                Status::WaitMem { .. } | Status::BusyUntil { .. }
            ),
            "only a parked core can fast-forward a stall"
        );
        self.breakdown.add(self.category(), k);
    }

    /// Replays `k = target - now` cycles of a recognized spin loop in
    /// O(1), leaving the core (and its L1, via `mem`) in exactly the
    /// state `k` normal `step`s would have produced.
    /// Callers guarantee the run is untraced (traced runs disable both
    /// cycle skipping and the parallel path, the only routes here).
    pub fn ff_replay<M: CoreMem>(
        &mut self,
        plan: SpinPlan,
        target: Cycle,
        now: Cycle,
        mem: &mut M,
    ) {
        let k = target - now;
        // Whole-machine skips always have k >= 2 (a 1-cycle skip is
        // just a tick), but a per-core spin park may be woken by an L1
        // delivery after a single elided cycle; the arithmetic below is
        // exact for k = 1 too (one phase-A or phase-B cycle).
        debug_assert!(k >= 1, "replay of an empty span");
        match plan.kind {
            SpinKind::Gline { rd, value } => {
                // One full iteration (barr + taken branch) per cycle.
                self.breakdown.add(self.category(), k);
                self.retired += 2 * k;
                self.set_reg(rd, value);
                debug_assert_eq!(self.pc, plan.top);
            }
            SpinKind::Mem {
                addr,
                rd,
                li,
                iter_retires,
                phase_b,
                value,
            } => {
                // Cycles alternate between the issue phase (A: entered
                // `Ready`, performs the L1 hit) and the resolve phase
                // (B: entered `WaitMem`, retires the back-branch).
                let (a_cycles, b_cycles) = if phase_b {
                    (k / 2, k.div_ceil(2))
                } else {
                    (k.div_ceil(2), k / 2)
                };
                let ends_waiting = if phase_b {
                    k.is_multiple_of(2)
                } else {
                    !k.is_multiple_of(2)
                };
                let cat_a = region_cat(self.region);
                let cat_b = match self.region {
                    Region::Normal => TimeCat::Read,
                    r => region_cat(r),
                };
                self.breakdown.add(cat_a, a_cycles);
                self.breakdown.add(cat_b, b_cycles);
                self.retired += a_cycles * (iter_retires - 1) + b_cycles;
                if phase_b {
                    // Consume the response that was pending at capture.
                    let _ = mem.take_resp_for_replay(self.id);
                }
                if ends_waiting {
                    // Last skipped cycle issued the load; the branch is
                    // next, with the response arriving at `target`.
                    self.set_reg(rd, value);
                    if let Some((a, imm)) = li {
                        self.set_reg(a, imm);
                    }
                    self.status = Status::WaitMem {
                        rd,
                        cat: TimeCat::Read,
                    };
                    self.wait_since = target - 1;
                    self.pc = plan.top + iter_retires as usize - 1;
                    mem.spin_replay(self.id, addr, a_cycles, Some(target));
                } else {
                    // Last skipped cycle retired the back-branch.
                    if let Some((a, imm)) = li {
                        self.set_reg(a, imm);
                    }
                    self.set_reg(rd, value);
                    self.status = Status::Ready;
                    if a_cycles > 0 {
                        self.wait_since = target - 2;
                    }
                    self.pc = plan.top;
                    mem.spin_replay(self.id, addr, a_cycles, None);
                }
            }
            SpinKind::RGline { left } => {
                // Replay-mode G-line spin: one compressed iteration per
                // cycle, no registers to update — the trace's exit step
                // carries everything the machine observes afterwards.
                debug_assert_eq!(self.pc, plan.top);
                debug_assert!(k <= left, "skip past a replay spin's budget");
                let _ = left;
                self.breakdown.add(self.category(), k);
                self.retired += 2 * k;
                self.rp_spin = self.rp_spin.saturating_sub(k);
                if self.rp_spin == 0 {
                    // `CoreTrace::validate` guarantees the op after a
                    // spin is a plain `Step` at this same pc, so the
                    // cursor can advance without the trace in hand.
                    self.rp_op += 1;
                }
            }
            SpinKind::RMem {
                addr,
                iter_retires,
                phase_b,
                left,
            } => {
                // Same phase alternation as the exec-mode `Mem` arm,
                // with the iteration budget bounding the skip instead
                // of a frozen register value.
                let (a_cycles, b_cycles) = if phase_b {
                    (k / 2, k.div_ceil(2))
                } else {
                    (k.div_ceil(2), k / 2)
                };
                let ends_waiting = if phase_b {
                    k.is_multiple_of(2)
                } else {
                    !k.is_multiple_of(2)
                };
                debug_assert!(b_cycles <= left, "skip past a replay spin's budget");
                let _ = left;
                let cat_a = region_cat(self.region);
                let cat_b = match self.region {
                    Region::Normal => TimeCat::Read,
                    r => region_cat(r),
                };
                self.breakdown.add(cat_a, a_cycles);
                self.breakdown.add(cat_b, b_cycles);
                self.retired += a_cycles * (iter_retires - 1) + b_cycles;
                if phase_b {
                    let _ = mem.take_resp_for_replay(self.id);
                }
                self.rp_spin = self.rp_spin.saturating_sub(b_cycles);
                if ends_waiting {
                    self.status = Status::WaitMem {
                        rd: Reg::ZERO,
                        cat: TimeCat::Read,
                    };
                    self.wait_since = target - 1;
                    self.pc = plan.top + iter_retires as usize - 1;
                    self.rp_phase_b = true;
                    mem.spin_replay(self.id, addr, a_cycles, Some(target));
                } else {
                    self.status = Status::Ready;
                    if a_cycles > 0 {
                        self.wait_since = target - 2;
                    }
                    self.pc = plan.top;
                    self.rp_phase_b = false;
                    mem.spin_replay(self.id, addr, a_cycles, None);
                    if self.rp_spin == 0 {
                        self.rp_op += 1;
                    }
                }
            }
        }
    }

    /// Pure preview of what [`ff_replay`](Self::ff_replay) would charge
    /// for `k` elided cycles of a memory-probing `plan`: `(category_a,
    /// a_cycles, category_b, b_cycles, retired, l1_hits)`. Used by
    /// `System::report` to fold a spin-parked core's pending span into
    /// a mid-run report without mutating anything; the numbers match
    /// the eventual replay exactly because the core's region and the
    /// plan are frozen while parked.
    pub(crate) fn spin_pending_stats(
        &self,
        plan: &SpinPlan,
        k: u64,
    ) -> (TimeCat, u64, TimeCat, u64, u64, u64) {
        let (iter_retires, phase_b) = match plan.kind {
            SpinKind::Mem {
                iter_retires,
                phase_b,
                ..
            } => (iter_retires, phase_b),
            SpinKind::RMem {
                iter_retires,
                phase_b,
                ..
            } => (iter_retires, phase_b),
            SpinKind::Gline { .. } | SpinKind::RGline { .. } => {
                unreachable!("only memory-probing spins are parked per-core")
            }
        };
        let (a_cycles, b_cycles) = if phase_b {
            (k / 2, k.div_ceil(2))
        } else {
            (k.div_ceil(2), k / 2)
        };
        let cat_a = region_cat(self.region);
        let cat_b = match self.region {
            Region::Normal => TimeCat::Read,
            r => region_cat(r),
        };
        (
            cat_a,
            a_cycles,
            cat_b,
            b_cycles,
            a_cycles * (iter_retires - 1) + b_cycles,
            a_cycles,
        )
    }

    fn check_pc(&mut self, prog: &Program) {
        assert!(
            self.pc <= prog.len(),
            "core {}: control transfer to bad pc {}",
            self.id,
            self.pc
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_base::config::{CmpConfig, GlineConfig};
    use sim_isa::assemble;
    use sim_mem::MemorySystem;

    fn machine() -> (MemorySystem, gline_core::BarrierNetwork) {
        let cfg = CmpConfig::icpp2010_with_cores(4);
        (
            MemorySystem::new(&cfg),
            gline_core::BarrierNetwork::new(cfg.mesh, GlineConfig::default()),
        )
    }

    fn run_one(src: &str, max: u64) -> (Core, MemorySystem) {
        let prog = CoreProg::Exec(assemble(src).unwrap());
        let (mut mem, mut gl) = machine();
        let mut core = Core::new(CoreId(0), 2);
        let tracer = Tracer::default();
        let mut now = 0;
        while !core.halted() {
            core.step(&prog, &mut mem, &mut gl, now, &tracer);
            mem.tick();
            gl.tick();
            now += 1;
            assert!(now < max, "program did not halt in {max} cycles");
        }
        (core, mem)
    }

    #[test]
    fn dual_issue_retires_two_alu_per_cycle() {
        // 10 ALU ops + halt on a 2-wide core: ~6 cycles, not 11.
        let src = "li r1, 1\n".repeat(10) + "halt";
        let (core, _) = run_one(&src, 100);
        assert!(
            core.breakdown().total() <= 7,
            "took {} cycles",
            core.breakdown().total()
        );
        assert_eq!(core.retired(), 11);
    }

    #[test]
    fn busy_occupies_exact_cycles() {
        let (core, _) = run_one("busy 50\nhalt", 100);
        // busy 50 = 50 cycles + 1 for halt (±1 for issue alignment).
        let total = core.breakdown().total();
        assert!((50..=52).contains(&total), "busy 50 took {total}");
        assert_eq!(core.breakdown()[TimeCat::Busy], total);
    }

    #[test]
    fn store_then_load_round_trips_through_memory() {
        let (core, mem) = run_one(
            "
            li r1, 0x100
            li r2, 99
            st r2, 0(r1)
            ld r3, 0(r1)
            beq r3, r2, ok
            busy 10000   # wrong value: hang so the test fails
        ok: halt
            ",
            100_000,
        );
        assert_eq!(mem.peek_word(0x100), 99);
        assert!(
            core.breakdown()[TimeCat::Write] > 0,
            "store stall must be charged"
        );
        assert!(
            core.breakdown()[TimeCat::Read] > 0,
            "load stall must be charged"
        );
    }

    #[test]
    fn region_markers_redirect_attribution() {
        let (core, _) = run_one(
            "
            region barrier
            busy 20
            region lock
            busy 30
            region normal
            busy 10
            halt
            ",
            1000,
        );
        let b = core.breakdown();
        assert!((19..=22).contains(&b[TimeCat::Barrier]), "{b:?}");
        assert!((29..=32).contains(&b[TimeCat::Lock]), "{b:?}");
        assert!(b[TimeCat::Busy] >= 10, "{b:?}");
    }

    #[test]
    fn gl_barrier_single_core() {
        // On a 4-core machine a single core cannot pass the barrier; on a
        // 1-core machine it takes ~4 cycles. Build a 1-core machine.
        let cfg = CmpConfig::icpp2010_with_cores(1);
        let mut mem = MemorySystem::new(&cfg);
        let mut gl = gline_core::BarrierNetwork::new(cfg.mesh, GlineConfig::default());
        let prog = CoreProg::Exec(
            assemble(
                "
            region barrier
            li r1, 1
            barw r1
        w:  barr r2
            bne r2, r0, w
            region normal
            halt
            ",
            )
            .unwrap(),
        );
        let mut core = Core::new(CoreId(0), 2);
        let tracer = Tracer::default();
        let mut now = 0;
        while !core.halted() {
            core.step(&prog, &mut mem, &mut gl, now, &tracer);
            mem.tick();
            gl.tick();
            now += 1;
            assert!(now < 100);
        }
        assert_eq!(core.gl_barriers(), 1);
        assert!(core.breakdown()[TimeCat::Barrier] >= 4);
    }

    #[test]
    fn taken_branch_ends_issue_group() {
        // A tight 100-iteration decrement loop: 2 instructions per
        // iteration with the branch ending the group → ~100+ cycles.
        let (core, _) = run_one(
            "
            li r1, 100
        l:  addi r1, r1, -1
            bne r1, r0, l
            halt
            ",
            10_000,
        );
        assert!(core.breakdown().total() >= 100);
        assert_eq!(core.retired(), 202);
    }

    #[test]
    #[should_panic(expected = "barw with a zero value")]
    fn zero_barw_rejected() {
        let _ = run_one("barw r0\nhalt", 100);
    }
}
