//! Trace recording and the exec/replay program dispatch (`DESIGN.md`
//! §12).
//!
//! A core is driven either by an ISA [`Program`] (exec mode: fetch,
//! decode, execute every cycle) or by a recorded [`CoreTrace`] (replay
//! mode: consume pre-computed issue groups). [`CoreProg`] is that
//! dispatch. Recording threads two observation wrappers through one
//! dense serial run — [`RecMem`] captures the memory request each issue
//! group hands to the hierarchy, [`RecGline`] the `barw` arrivals — and
//! the [`Recorder`] folds the per-cycle observations into the
//! [`sim_trace`] op stream, run-length compressing the two spin-loop
//! shapes the skip scheduler recognizes:
//!
//! * `top: barr ; b<cond> …, top` — one cycle, two retires, no machine
//!   interaction → [`TraceOp::GlineSpin`];
//! * `top: [li ;] ld ; b<cond> …, top` — the two-phase memory flag
//!   spin → [`TraceOp::MemSpin`].
//!
//! Compression keys on machine-visible observables (retires, effect,
//! pc movement) *and* on the static program shape, so a compressed
//! `MemSpin` is exactly a loop the exec-mode recognizer
//! (`Core::ff_classify`) would accept: its `li` overlay is
//! iteration-invariant and its exit can only be triggered by a protocol
//! delivery — the property the replay engine's per-core spin parking
//! relies on. Anything else is recorded as plain [`Step`]s, which
//! replay bit-identically regardless of what produced them.

use gline_core::{BarrierHw, CtxId, GlineStats};
use sim_base::{CoreId, Cycle};
use sim_isa::inst::{Inst, Region};
use sim_isa::Program;
use sim_mem::{CoreMem, CoreReq, CoreResp};
use sim_trace::{CoreTrace, Effect, Step, TraceOp};

/// What drives a core: an ISA program (exec mode) or a recorded trace
/// (replay mode). One per core; modes may be mixed across cores only by
/// constructing the [`System`](crate::System) by hand — the public
/// constructors build homogeneous machines.
#[derive(Clone, Debug)]
pub enum CoreProg {
    /// Exec-driven: interpret this program.
    Exec(Program),
    /// Trace-driven: replay this recorded op stream.
    Replay(CoreTrace),
}

impl CoreProg {
    /// True for a trace-driven core.
    pub fn is_replay(&self) -> bool {
        matches!(self, CoreProg::Replay(_))
    }
}

/// [`CoreMem`] wrapper that records the request a `step` issues while
/// forwarding everything. One instance per core-step; `req` holds the
/// at-most-one request the issue group made.
#[derive(Debug)]
pub(crate) struct RecMem<'a, M: CoreMem> {
    inner: &'a mut M,
    /// The request captured this step, if any.
    pub(crate) req: Option<CoreReq>,
}

impl<'a, M: CoreMem> RecMem<'a, M> {
    pub(crate) fn new(inner: &'a mut M) -> RecMem<'a, M> {
        RecMem { inner, req: None }
    }
}

impl<M: CoreMem> CoreMem for RecMem<'_, M> {
    fn request(&mut self, core: CoreId, req: CoreReq) {
        debug_assert!(self.req.is_none(), "one request per issue group");
        self.req = Some(req);
        self.inner.request(core, req);
    }
    fn poll(&mut self, core: CoreId) -> Option<CoreResp> {
        self.inner.poll(core)
    }
    fn resp_ready_at(&self, core: CoreId) -> Option<Cycle> {
        self.inner.resp_ready_at(core)
    }
    fn l1_busy(&self, core: CoreId) -> bool {
        self.inner.l1_busy(core)
    }
    fn peek_resp_load(&self, core: CoreId) -> Option<(Cycle, u64)> {
        self.inner.peek_resp_load(core)
    }
    fn spin_probe_load(&self, core: CoreId, addr: u64) -> Option<u64> {
        self.inner.spin_probe_load(core, addr)
    }
    fn spin_line_value(&self, core: CoreId, addr: u64) -> Option<u64> {
        self.inner.spin_line_value(core, addr)
    }
    fn spin_replay(&mut self, core: CoreId, addr: u64, hits: u64, final_ready: Option<Cycle>) {
        self.inner.spin_replay(core, addr, hits, final_ready);
    }
    fn take_resp_for_replay(&mut self, core: CoreId) -> Option<CoreResp> {
        self.inner.take_resp_for_replay(core)
    }
}

/// [`BarrierHw`] wrapper that records `barw` arrivals (with the context
/// each one targeted) while forwarding everything.
#[derive(Debug)]
pub(crate) struct RecGline<'a, B: BarrierHw + ?Sized> {
    inner: &'a mut B,
    writes: &'a mut Vec<(u8, u64)>,
}

impl<'a, B: BarrierHw + ?Sized> RecGline<'a, B> {
    pub(crate) fn new(inner: &'a mut B, writes: &'a mut Vec<(u8, u64)>) -> RecGline<'a, B> {
        RecGline { inner, writes }
    }
}

impl<B: BarrierHw + ?Sized> BarrierHw for RecGline<'_, B> {
    fn num_cores(&self) -> usize {
        self.inner.num_cores()
    }
    fn write_bar_reg(&mut self, core: CoreId, ctx: CtxId, value: u64) {
        self.writes.push((ctx as u8, value));
        self.inner.write_bar_reg(core, ctx, value);
    }
    fn bar_reg(&self, core: CoreId, ctx: CtxId) -> u64 {
        self.inner.bar_reg(core, ctx)
    }
    fn all_released(&self, ctx: CtxId) -> bool {
        self.inner.all_released(ctx)
    }
    fn tick(&mut self) {
        self.inner.tick();
    }
    fn now(&self) -> Cycle {
        self.inner.now()
    }
    fn num_contexts(&self) -> usize {
        self.inner.num_contexts()
    }
    fn stats(&self, ctx: CtxId) -> GlineStats {
        self.inner.stats(ctx)
    }
}

/// Core state snapshot taken immediately before a recorded `step`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Pre {
    pub(crate) pc: u32,
    pub(crate) retired: u64,
    pub(crate) region: Region,
    pub(crate) halted: bool,
}

/// One observed issue group, before spin compression.
#[derive(Debug)]
struct Obs {
    pc: u32,
    pc_after: u32,
    retires: u8,
    region: Option<Region>,
    bar_writes: Vec<(u8, u64)>,
    effect: Effect,
}

impl Obs {
    fn into_step(self) -> Step {
        Step {
            pc: self.pc,
            retires: self.retires,
            region: self.region,
            bar_writes: self.bar_writes,
            effect: self.effect,
        }
    }

    /// No side effects a spin iteration could not have.
    fn plain(&self) -> bool {
        self.bar_writes.is_empty() && self.region.is_none()
    }
}

/// True when `prog[at]` is a branch whose taken target is `top`.
fn branch_to(prog: &Program, at: usize, top: usize) -> bool {
    matches!(prog.fetch(at), Some(Inst::Branch { target, .. }) if target == top)
}

/// Matches one iteration of the G-line spin shape: `barr ; b<cond> …`
/// back to the same pc, two retires, one cycle, no machine interaction.
fn gline_iter_shape(obs: &Obs, prog: &Program) -> bool {
    let top = obs.pc as usize;
    obs.retires == 2
        && obs.effect == Effect::None
        && obs.plain()
        && obs.pc_after == obs.pc
        && matches!(prog.fetch(top), Some(Inst::BarRead { .. }))
        && branch_to(prog, top + 1, top)
}

/// Matches the load-issuing phase of a memory flag spin — `[li ;] ld`
/// at a loop top whose next instruction branches back to it — returning
/// the probed address and the iteration's retire count.
fn mem_a_shape(obs: &Obs, prog: &Program) -> Option<(u64, u8)> {
    let Effect::Load { addr } = obs.effect else {
        return None;
    };
    if !obs.plain() {
        return None;
    }
    let top = obs.pc as usize;
    match obs.retires {
        1 if obs.pc_after as usize == top + 1
            && matches!(prog.fetch(top), Some(Inst::Ld { .. }))
            && branch_to(prog, top + 1, top) =>
        {
            Some((addr, 2))
        }
        2 if obs.pc_after as usize == top + 2
            && matches!(prog.fetch(top), Some(Inst::Li { .. }))
            && matches!(prog.fetch(top + 1), Some(Inst::Ld { .. }))
            && branch_to(prog, top + 2, top) =>
        {
            Some((addr, 3))
        }
        _ => None,
    }
}

/// A spin run being accumulated (flushed as one compressed op).
#[derive(Debug)]
enum PendSpin {
    Gline {
        pc: u32,
        iters: u64,
    },
    Mem {
        pc: u32,
        addr: u64,
        ir: u8,
        iters: u64,
    },
}

/// A phase-A candidate held until the next group shows whether it pairs
/// into a full spin iteration.
#[derive(Debug)]
struct HeldA {
    step: Step,
    addr: u64,
    ir: u8,
}

/// One core's compression state machine.
#[derive(Debug, Default)]
struct CoreRec {
    ops: Vec<TraceOp>,
    spin: Option<PendSpin>,
    held: Option<HeldA>,
}

impl CoreRec {
    fn flush_spin(&mut self) {
        match self.spin.take() {
            None => {}
            Some(PendSpin::Gline { pc, iters }) => self.ops.push(TraceOp::GlineSpin { pc, iters }),
            Some(PendSpin::Mem {
                pc,
                addr,
                ir,
                iters,
            }) => self.ops.push(TraceOp::MemSpin {
                pc,
                addr,
                iter_retires: ir,
                iters,
            }),
        }
    }
}

/// Folds per-cycle issue-group observations into per-core op streams.
#[derive(Debug)]
pub(crate) struct Recorder {
    cores: Vec<CoreRec>,
}

impl Recorder {
    pub(crate) fn new(n: usize) -> Recorder {
        Recorder {
            cores: (0..n).map(|_| CoreRec::default()).collect(),
        }
    }

    /// Captures core `i`'s just-executed cycle. `pre` is the state
    /// snapshot from before the step, `req` the memory request the step
    /// issued (if any), `writes` its latched `barw` values (drained).
    /// Pure-charge cycles (no retires, no new halt) record nothing:
    /// replay derives stall lengths from the live memory hierarchy.
    #[allow(clippy::too_many_arguments)] // one call site, mirrors the step() signature plus the pre-snapshot
    pub(crate) fn record_step<M: CoreMem>(
        &mut self,
        i: usize,
        prog: &Program,
        pre: Pre,
        core: &crate::core::Core,
        rmem: &RecMem<'_, M>,
        writes: &mut Vec<(u8, u64)>,
        now: Cycle,
    ) {
        let retires = core.retired() - pre.retired;
        let newly_halted = core.halted() && !pre.halted;
        if retires == 0 && !newly_halted {
            debug_assert!(writes.is_empty(), "barrier write on a pure-charge cycle");
            return;
        }
        let effect = match rmem.req {
            Some(CoreReq::Load { addr }) => Effect::Load { addr },
            Some(CoreReq::Store { addr, value }) => Effect::Store { addr, value },
            Some(CoreReq::Amo { addr, op, operand }) => Effect::Amo { addr, op, operand },
            None if core.halted() => Effect::Halt,
            None => match core.busy_until() {
                Some(until) => Effect::Busy {
                    cycles: (until - now) as u32,
                },
                None => Effect::None,
            },
        };
        let region = (core.cur_region() != pre.region).then(|| core.cur_region());
        let obs = Obs {
            pc: pre.pc,
            pc_after: core.pc() as u32,
            retires: retires.min(u8::MAX as u64) as u8,
            region,
            bar_writes: std::mem::take(writes),
            effect,
        };
        self.observe(i, obs, prog);
    }

    fn observe(&mut self, i: usize, obs: Obs, prog: &Program) {
        let c = &mut self.cores[i];
        // A held phase-A completes into a spin iteration iff this group
        // is its resolve phase: one retire (the back-branch), no
        // effects, jumping from the branch slot back to the loop top.
        if let Some(h) = c.held.take() {
            let b_pc = h.step.pc as usize + h.ir as usize - 1;
            if obs.retires == 1
                && obs.effect == Effect::None
                && obs.plain()
                && obs.pc as usize == b_pc
                && obs.pc_after == h.step.pc
            {
                match &mut c.spin {
                    Some(PendSpin::Mem {
                        pc,
                        addr,
                        ir,
                        iters,
                    }) if *pc == h.step.pc && *addr == h.addr && *ir == h.ir => *iters += 1,
                    _ => {
                        c.flush_spin();
                        c.spin = Some(PendSpin::Mem {
                            pc: h.step.pc,
                            addr: h.addr,
                            ir: h.ir,
                            iters: 1,
                        });
                    }
                }
                return;
            }
            // Not a spin iteration after all (the loop exited, or the
            // shape was a false positive): the held group is a plain
            // step, and this group classifies fresh below.
            c.flush_spin();
            c.ops.push(TraceOp::Step(h.step));
        }
        if gline_iter_shape(&obs, prog) {
            match &mut c.spin {
                Some(PendSpin::Gline { pc, iters }) if *pc == obs.pc => *iters += 1,
                _ => {
                    c.flush_spin();
                    c.spin = Some(PendSpin::Gline {
                        pc: obs.pc,
                        iters: 1,
                    });
                }
            }
            return;
        }
        if let Some((addr, ir)) = mem_a_shape(&obs, prog) {
            c.held = Some(HeldA {
                step: obs.into_step(),
                addr,
                ir,
            });
            return;
        }
        c.flush_spin();
        c.ops.push(TraceOp::Step(obs.into_step()));
    }

    /// Flushes every core's pending state and returns the traces.
    pub(crate) fn finish(self) -> Vec<CoreTrace> {
        self.cores
            .into_iter()
            .enumerate()
            .map(|(i, mut c)| {
                if let Some(h) = c.held.take() {
                    c.flush_spin();
                    c.ops.push(TraceOp::Step(h.step));
                }
                c.flush_spin();
                CoreTrace {
                    core: i as u32,
                    ops: c.ops,
                }
            })
            .collect()
    }
}
