//! The assembled machine.

use crate::core::{Core, FfClass, SpinPlan};
use crate::par;
use crate::replay::{CoreProg, Pre, RecGline, RecMem, Recorder};
use crate::stats::SystemReport;
use gline_core::{BarrierHw, BarrierNetwork};
use sim_base::config::CmpConfig;
use sim_base::stats::TimeBreakdown;
use sim_base::trace::{NullSink, TraceSink, Tracer};
use sim_base::{CoreId, Cycle};
use sim_isa::Program;
use sim_mem::MemorySystem;
use sim_trace::{CoreTrace, TraceSet};

/// The full CMP: cores + memory hierarchy + NoC + G-line barrier
/// hardware. Generic over the barrier network flavour (flat by default;
/// also [`gline_core::TdmBarrierNetwork`] or
/// [`gline_core::ClusteredBarrierNetwork`]) and over the trace sink
/// (disabled by default; see [`sim_base::trace`]).
#[derive(Debug)]
pub struct System<B: BarrierHw = BarrierNetwork, S: TraceSink = NullSink> {
    cfg: CmpConfig,
    cores: Vec<Core>,
    progs: Vec<CoreProg>,
    mem: MemorySystem<S>,
    gline: B,
    tracer: Tracer<S>,
    now: Cycle,
    /// Quiescence-aware cycle skipping (see [`Self::set_skip_enabled`]).
    skip_enabled: bool,
    /// Per-core spin plans, reused across skip decisions (no per-cycle
    /// allocation on the hot path).
    ff_plans: Vec<Option<SpinPlan>>,
    /// Fast-forward effectiveness counters (diagnostics only; not part
    /// of [`SystemReport`], so skip-on and skip-off reports stay
    /// bit-identical).
    skip_stats: SkipStats,
    /// Active-set micro-scheduling (see
    /// [`Self::set_active_set_enabled`]).
    active_set_enabled: bool,
    /// Per-core park state: `Some((wake, anchor))` while the core's
    /// steps are pure stall charges. The span `[anchor, wake)` is
    /// charged lazily at wake-up; [`Self::report`] folds the pending
    /// part in so mid-run reports stay bit-identical.
    parked: Vec<Option<(Cycle, Cycle)>>,
    /// Per-core spin park state: `Some((plan, anchor))` while the core
    /// sits in a recognized memory-probing spin loop whose probed line
    /// provably cannot change (no protocol message is queued for its
    /// tile). The elided span `[anchor, now)` is replayed in closed
    /// form at wake-up — the cycle a message is about to reach the
    /// tile — and [`Self::report`] folds the pending part in purely.
    /// Disjoint from `parked` (a core is `Ready`/mid-spin here, stalled
    /// there).
    spin_parked: Vec<Option<(SpinPlan, Cycle)>>,
    /// Per-core miss park state: `Some(anchor)` while the core waits on
    /// a memory access whose response is still in flight (not yet
    /// scheduled by its L1). Every elided step is a pure breakdown
    /// charge; the wake trigger is the same delivery predicate as
    /// `spin_parked`'s, because only a message reaching the tile can
    /// install the response. Disjoint from both other park states.
    miss_parked: Vec<Option<Cycle>>,
    /// Current fast-forward failure backoff (0 = none): after a failed
    /// attempt, skip attempts are suppressed for this many cycles,
    /// doubling per consecutive failure up to [`MAX_FF_BACKOFF`].
    ff_backoff: u64,
    /// First cycle at which fast-forward attempts resume.
    ff_resume_at: Cycle,
    /// Core-scheduler occupancy counters (diagnostics only).
    sched: CoreSchedStats,
    /// Which rendezvous protocol the parallel engine uses (see
    /// [`Self::set_sync_protocol`]).
    sync_protocol: SyncProtocol,
    /// Parallel-engine synchronization counters (diagnostics only).
    sync: SyncStats,
    /// True when any program can touch the barrier network. When false
    /// (software barriers), the epoch window never needs the G-line
    /// visibility clamp.
    uses_gline: bool,
    /// Per-core halt-distance tables: a lower bound, from each pc, on
    /// the dynamic instructions left before `halt` retires. Bounds the
    /// epoch window so the machine never free-runs past the last halt
    /// (the serial engines stop the clock there).
    halt_bounds: Vec<HaltBound>,
}

/// The epoch driver's reusable coordinator-side buffers (tile/shard
/// activity flags and the merged barrier-write latch).
#[derive(Debug, Default)]
struct EpochScratch {
    active: Vec<bool>,
    shard_active: Vec<bool>,
    latch: Vec<(Cycle, CoreId, gline_core::CtxId, u64)>,
}

/// Per-core halt-distance data (see [`System`]'s `halt_bounds` field).
#[derive(Clone, Debug)]
enum HaltBound {
    /// Execution mode: minimum dynamic instructions to reach *and
    /// retire* `halt` from each pc (`u32::MAX` = halt unreachable, the
    /// core can run forever). `Jalr` poisons the whole table to 1 (its
    /// target is data-dependent).
    Exec(Vec<u32>),
    /// Replay mode: each remaining trace op takes at least one cycle.
    Replay {
        /// Total op count of the core's trace.
        ops: usize,
    },
}

/// Cap on the fast-forward failure backoff. In coherence-bound phases
/// the machine is never quiescent, so attempts settle at one per
/// `MAX_FF_BACKOFF` cycles and the attempt overhead vanishes; in
/// bursty phases a successful skip resets the backoff to zero, and at
/// most this many skippable cycles are ticked densely before the next
/// attempt notices a quiescent span. The cap can sit this high because
/// densely ticked cycles are cheap once the cores park (§10): a
/// backed-off cycle with everything parked touches only the empty
/// active sets, so the transition latency it buys costs microseconds.
const MAX_FF_BACKOFF: u64 = 512;

/// How well the cycle-skipping scheduler is doing on a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Fast-forward attempts (one per `advance` with skipping live).
    pub attempts: u64,
    /// Attempts that jumped the clock.
    pub skips: u64,
    /// Total cycles elided across all jumps.
    pub cycles_skipped: u64,
    /// Attempts aborted because a core was actively executing.
    pub fail_blocked: u64,
    /// Attempts aborted because the earliest event was within a cycle.
    pub fail_near: u64,
    /// Cycles on which an attempt was suppressed by the failure
    /// backoff (the machine ticked densely instead).
    pub backed_off: u64,
}

/// Core-scheduler occupancy counters (diagnostics only; not part of
/// [`SystemReport`], so sparse and dense runs stay bit-identical).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreSchedStats {
    /// Ticks performed.
    pub ticks: u64,
    /// Core steps actually executed.
    pub core_steps: u64,
    /// Core steps elided because the core was parked on a stall (pure
    /// breakdown charges applied lazily at wake-up).
    pub parked_steps: u64,
    /// Core steps elided because the core was parked in a recognized
    /// memory-probing spin loop (replayed in closed form at wake-up).
    pub spin_parked_steps: u64,
}

impl CoreSchedStats {
    /// Mean number of cores stepped per tick.
    pub fn mean_active_cores(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.core_steps as f64 / self.ticks as f64
        }
    }
}

// Shard merges for the parallel engine: every field is an independent
// event count, so the merge is fieldwise addition — associative,
// commutative, with `default()` as identity (property-tested below).
impl std::ops::AddAssign for CoreSchedStats {
    fn add_assign(&mut self, o: CoreSchedStats) {
        self.ticks += o.ticks;
        self.core_steps += o.core_steps;
        self.parked_steps += o.parked_steps;
        self.spin_parked_steps += o.spin_parked_steps;
    }
}

impl std::ops::AddAssign for SkipStats {
    fn add_assign(&mut self, o: SkipStats) {
        self.attempts += o.attempts;
        self.skips += o.skips;
        self.cycles_skipped += o.cycles_skipped;
        self.fail_blocked += o.fail_blocked;
        self.fail_near += o.fail_near;
        self.backed_off += o.backed_off;
    }
}

/// Which rendezvous protocol [`System::run_with_workers`] uses
/// (`DESIGN.md` §11 and §13). Both are bit-identical to the serial
/// engine; they differ only in wall-clock cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncProtocol {
    /// Epoch-batched free-runs: one rendezvous per multi-cycle window,
    /// idle shards skip the window entirely (the default).
    #[default]
    Epoch,
    /// The original sharded tick: two barrier crossings per cycle.
    PerCycle,
}

/// Parallel-engine synchronization counters (diagnostics only; not part
/// of [`SystemReport`](crate::SystemReport), so serial and parallel
/// reports stay bit-identical). All fields except `wakeups` are
/// deterministic for a given machine, worker count and protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Epochs executed (epoch protocol only).
    pub epochs: u64,
    /// Cycles advanced inside parallel-engine ticks or epochs (skipped
    /// cycles and serial fallbacks excluded) — the denominator for
    /// crossings-per-kilocycle.
    pub par_cycles: u64,
    /// Barrier / gate crossings: full rendezvous that every live
    /// participant had to reach.
    pub crossings: u64,
    /// Times a participant gave up spinning and parked on the OS
    /// (timing-dependent; zero on an unloaded host with short waits).
    pub wakeups: u64,
    /// Shard-epochs skipped because every tile in the shard was idle
    /// (the shard's worker was never woken for that window).
    pub shard_epochs_skipped: u64,
}

impl SyncStats {
    /// Mean epoch window length in cycles (0 when no epochs ran).
    pub fn mean_epoch_len(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.par_cycles as f64 / self.epochs as f64
        }
    }

    /// Barrier crossings per thousand simulated cycles advanced by the
    /// parallel engine (0 when it never ran).
    pub fn crossings_per_kilocycle(&self) -> f64 {
        if self.par_cycles == 0 {
            0.0
        } else {
            self.crossings as f64 * 1000.0 / self.par_cycles as f64
        }
    }
}

impl<B: BarrierHw> System<B> {
    /// Builds the machine around explicit barrier hardware.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores() == hw.num_cores()`.
    pub fn with_barrier_hw(cfg: CmpConfig, progs: Vec<Program>, hw: B) -> System<B> {
        System::traced_with_barrier_hw(cfg, progs, hw, Tracer::default())
    }

    /// Builds a replay-mode machine around explicit barrier hardware:
    /// every core is driven by its recorded trace from `set`, and the
    /// initial memory image is `set.pokes`.
    ///
    /// # Panics
    /// Panics unless `set` holds one valid trace per core (see
    /// [`sim_trace::CoreTrace::validate`]) and the core counts agree.
    pub fn replay_with_barrier_hw(cfg: CmpConfig, set: &TraceSet, hw: B) -> System<B> {
        System::replay_traced_with_barrier_hw(cfg, set, hw, Tracer::default())
    }
}

impl<B: BarrierHw, S: TraceSink> System<B, S> {
    /// Builds the machine around explicit barrier hardware, with the
    /// cores, memory hierarchy and NoC all emitting into `tracer`. The
    /// barrier hardware traces only if it was itself built over the same
    /// sink (see [`gline_core::BarrierNetwork::traced`]).
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores() == hw.num_cores()`.
    pub fn traced_with_barrier_hw(
        cfg: CmpConfig,
        progs: Vec<Program>,
        hw: B,
        tracer: Tracer<S>,
    ) -> System<B, S> {
        System::assemble(
            cfg,
            progs.into_iter().map(CoreProg::Exec).collect(),
            hw,
            tracer,
        )
    }

    /// Replay-mode [`traced_with_barrier_hw`](Self::traced_with_barrier_hw).
    ///
    /// # Panics
    /// Panics unless `set` holds one valid trace per core and the core
    /// counts agree.
    pub fn replay_traced_with_barrier_hw(
        cfg: CmpConfig,
        set: &TraceSet,
        hw: B,
        tracer: Tracer<S>,
    ) -> System<B, S> {
        for t in &set.cores {
            t.validate()
                .unwrap_or_else(|e| panic!("core {}: invalid trace: {e}", t.core));
        }
        let progs = set.cores.iter().cloned().map(CoreProg::Replay).collect();
        let mut sys = System::assemble(cfg, progs, hw, tracer);
        for &(addr, value) in &set.pokes {
            sys.mem.poke_word(addr, value);
        }
        sys
    }

    fn assemble(cfg: CmpConfig, progs: Vec<CoreProg>, hw: B, tracer: Tracer<S>) -> System<B, S> {
        assert_eq!(progs.len(), cfg.num_cores(), "one program per core");
        assert_eq!(
            hw.num_cores(),
            cfg.num_cores(),
            "barrier hardware core count mismatch"
        );
        let mut cores: Vec<Core> = (0..cfg.num_cores())
            .map(|i| Core::new(CoreId::from(i), cfg.core.issue_width))
            .collect();
        for (core, prog) in cores.iter_mut().zip(&progs) {
            if let CoreProg::Replay(t) = prog {
                core.prime_replay(t);
            }
        }
        let uses_gline = progs.iter().any(prog_uses_gline);
        let halt_bounds = progs.iter().map(halt_bound_table).collect();
        System {
            cfg,
            cores,
            progs,
            mem: MemorySystem::traced(&cfg, tracer.clone()),
            gline: hw,
            tracer,
            now: 0,
            skip_enabled: true,
            ff_plans: vec![None; cfg.num_cores()],
            skip_stats: SkipStats::default(),
            active_set_enabled: true,
            parked: vec![None; cfg.num_cores()],
            spin_parked: vec![None; cfg.num_cores()],
            miss_parked: vec![None; cfg.num_cores()],
            ff_backoff: 0,
            ff_resume_at: 0,
            sched: CoreSchedStats::default(),
            sync_protocol: SyncProtocol::default(),
            sync: SyncStats::default(),
            uses_gline,
            halt_bounds,
        }
    }
}

/// True when the program can touch the barrier network (epoch window
/// G-line clamp gate; see [`System`]'s `uses_gline`).
fn prog_uses_gline(prog: &CoreProg) -> bool {
    match prog {
        CoreProg::Exec(p) => p
            .insts()
            .iter()
            .any(|i| matches!(i, sim_isa::Inst::BarWrite { .. })),
        CoreProg::Replay(t) => t.ops.iter().any(|op| match op {
            sim_trace::TraceOp::GlineSpin { .. } => true,
            sim_trace::TraceOp::Step(s) => !s.bar_writes.is_empty(),
            sim_trace::TraceOp::MemSpin { .. } => false,
        }),
    }
}

/// Builds one core's [`HaltBound`] table. For execution mode this is a
/// shortest-path fixpoint over the static CFG: `dist[pc]` is the least
/// number of dynamic instructions that must retire, starting at `pc`,
/// before `halt` does (counting the halt itself). Running off the end
/// of the program halts too, so out-of-range successors count zero.
fn halt_bound_table(prog: &CoreProg) -> HaltBound {
    use sim_isa::Inst;
    let p = match prog {
        CoreProg::Replay(t) => return HaltBound::Replay { ops: t.ops.len() },
        CoreProg::Exec(p) => p,
    };
    let insts = p.insts();
    if insts.iter().any(|i| matches!(i, Inst::Jalr { .. })) {
        // An indirect jump's target is data-dependent: no static bound
        // beyond "at least one more instruction".
        return HaltBound::Exec(vec![1; insts.len()]);
    }
    let mut dist = vec![u32::MAX; insts.len()];
    // Bellman-Ford style relaxation; the graph is tiny (micro-kernels).
    let mut changed = true;
    while changed {
        changed = false;
        for (pc, inst) in insts.iter().enumerate().rev() {
            let succ = |t: usize| -> u32 { dist.get(t).copied().unwrap_or(0) };
            let best = match *inst {
                Inst::Halt => 0,
                Inst::Jal { target, .. } => succ(target),
                Inst::Branch { target, .. } => succ(pc + 1).min(succ(target)),
                Inst::Jalr { .. } => unreachable!("poisoned above"),
                _ => succ(pc + 1),
            };
            let d = best.saturating_add(1);
            if d < dist[pc] {
                dist[pc] = d;
                changed = true;
            }
        }
    }
    HaltBound::Exec(dist)
}

impl System {
    /// Builds the machine with one program per core.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores()`.
    pub fn new(cfg: CmpConfig, progs: Vec<Program>) -> System {
        System::traced(cfg, progs, Tracer::default())
    }

    /// Convenience: every core runs the same program.
    pub fn homogeneous(cfg: CmpConfig, prog: Program) -> System {
        let progs = vec![prog; cfg.num_cores()];
        System::new(cfg, progs)
    }

    /// Builds a replay-mode machine: every core is driven by its
    /// recorded trace from `set` (see [`Self::run_recorded`]), and the
    /// initial memory image is `set.pokes`.
    ///
    /// # Panics
    /// Panics unless `set` holds one valid trace per core (see
    /// [`sim_trace::CoreTrace::validate`]) and the core counts agree.
    pub fn replay(cfg: CmpConfig, set: &TraceSet) -> System {
        System::replay_traced(cfg, set, Tracer::default())
    }

    /// Builds the machine with per-context barrier participation masks
    /// (see [`gline_core::BarrierNetwork::with_members`]); programs
    /// select contexts with the `barctx` instruction.
    pub fn with_barrier_masks(
        cfg: CmpConfig,
        progs: Vec<Program>,
        masks: Vec<Vec<bool>>,
    ) -> System {
        let hw = BarrierNetwork::with_members(cfg.mesh, cfg.gline, masks);
        System::with_barrier_hw(cfg, progs, hw)
    }
}

impl<S: TraceSink> System<BarrierNetwork<S>, S> {
    /// Builds the fully traced machine: every layer — cores, caches,
    /// directory, NoC and the G-line barrier network — emits into
    /// (clones of) `tracer`.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores()`.
    pub fn traced(
        cfg: CmpConfig,
        progs: Vec<Program>,
        tracer: Tracer<S>,
    ) -> System<BarrierNetwork<S>, S> {
        let hw = BarrierNetwork::traced(cfg.mesh, cfg.gline, tracer.clone());
        System::traced_with_barrier_hw(cfg, progs, hw, tracer)
    }

    /// Replay-mode [`traced`](Self::traced): every layer emits into
    /// `tracer` while the cores are driven by recorded traces.
    ///
    /// # Panics
    /// Panics unless `set` holds one valid trace per core and the core
    /// counts agree.
    pub fn replay_traced(
        cfg: CmpConfig,
        set: &TraceSet,
        tracer: Tracer<S>,
    ) -> System<BarrierNetwork<S>, S> {
        let hw = BarrierNetwork::traced(cfg.mesh, cfg.gline, tracer.clone());
        System::replay_traced_with_barrier_hw(cfg, set, hw, tracer)
    }
}

impl<B: BarrierHw, S: TraceSink> System<B, S> {
    /// The tracer shared by the machine's components.
    pub fn tracer(&self) -> &Tracer<S> {
        &self.tracer
    }

    /// The configuration in use.
    pub fn config(&self) -> &CmpConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Pre-loads a data word (before any core touches its line).
    pub fn poke_word(&mut self, addr: u64, value: u64) {
        self.mem.poke_word(addr, value);
    }

    /// Architectural value of a data word, wherever its current copy is.
    pub fn peek_word(&self, addr: u64) -> u64 {
        self.mem.peek_word(addr)
    }

    /// Access to a core (registers, breakdown, …).
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// True when every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(Core::halted)
    }

    /// Advances the whole machine one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        self.sched.ticks += 1;
        if self.active_set_enabled {
            for i in 0..self.cores.len() {
                if let Some((wake, _)) = self.parked[i] {
                    if now < wake {
                        self.sched.parked_steps += 1;
                        continue;
                    }
                    let (_, anchor) = self.parked[i].take().expect("checked above");
                    self.cores[i].ff_stall(now - anchor);
                }
                if let Some((plan, anchor)) = self.spin_parked[i] {
                    // The probed line can only change when a protocol
                    // message reaches this tile, and deliveries for this
                    // cycle were queued by the previous cycle's NoC tick
                    // — so the check is exact and runs one cycle ahead
                    // of the mutation.
                    if !self.mem.has_delivery_for(CoreId::from(i)) {
                        self.sched.spin_parked_steps += 1;
                        continue;
                    }
                    // A message lands this cycle (during `mem.tick`,
                    // after the cores step, exactly as it would have in
                    // a dense run): replay the elided span against the
                    // still-frozen line, then step this cycle live.
                    self.spin_parked[i] = None;
                    self.cores[i].ff_replay(plan, now, anchor, &mut self.mem);
                }
                if let Some(anchor) = self.miss_parked[i] {
                    if !self.mem.has_delivery_for(CoreId::from(i)) {
                        self.sched.parked_steps += 1;
                        continue;
                    }
                    // The inbound message may carry (or unblock) the
                    // response; settle the elided charge-only span and
                    // step live from here on.
                    self.miss_parked[i] = None;
                    self.cores[i].ff_stall(now - anchor);
                }
                let core = &mut self.cores[i];
                if core.halted() {
                    continue;
                }
                // Park a core whose miss is still in flight: its L1
                // cannot schedule the response (and the core cannot do
                // anything but charge its stall category) until a
                // protocol message reaches this tile.
                if core.waiting_on_unscheduled_resp(&self.mem)
                    && !self.mem.has_delivery_for(CoreId::from(i))
                {
                    debug_assert!(self.parked[i].is_none() && self.spin_parked[i].is_none());
                    self.miss_parked[i] = Some(now);
                    self.sched.parked_steps += 1;
                    continue;
                }
                // Park instead of stepping when the core sits at a
                // recognized memory-probing spin and no message is
                // inbound: every elided step is a closed-form replay at
                // wake-up. G-line spins are left to the whole-machine
                // skip — `bar_reg` changes without L1 traffic, so they
                // have no per-core wake trigger (which is why the park
                // decision uses the memory-only matcher instead of the
                // full classifier: a G-line plan would be discarded
                // here, so computing it per tick is pure overhead).
                if !S::ENABLED && !self.mem.has_delivery_for(CoreId::from(i)) {
                    if let Some(plan) = core.park_spin(&self.progs[i], &self.mem, now) {
                        debug_assert!(self.parked[i].is_none());
                        self.spin_parked[i] = Some((plan, now));
                        self.sched.spin_parked_steps += 1;
                        continue;
                    }
                }
                self.sched.core_steps += 1;
                core.step(
                    &self.progs[i],
                    &mut self.mem,
                    &mut self.gline,
                    now,
                    &self.tracer,
                );
                // Park the core if its next state change is provably
                // more than one cycle out; its skipped steps are pure
                // stall charges, applied at wake-up.
                if let Some(wake) = core.park_until(&self.mem) {
                    if wake > now + 1 {
                        self.parked[i] = Some((wake, now + 1));
                    }
                }
            }
        } else {
            for (core, prog) in self.cores.iter_mut().zip(&self.progs) {
                if !core.halted() {
                    self.sched.core_steps += 1;
                }
                core.step(prog, &mut self.mem, &mut self.gline, now, &self.tracer);
            }
        }
        self.mem.tick();
        self.gline.tick();
        self.now += 1;
    }

    /// Charges every parked core's pending stall span and unparks it.
    /// Called before a whole-machine fast-forward (whose closed-form
    /// replay charges from `now` onward) and when active-set scheduling
    /// is turned off mid-run.
    fn flush_parks(&mut self) {
        for i in 0..self.cores.len() {
            if let Some((_, anchor)) = self.parked[i].take() {
                self.cores[i].ff_stall(self.now - anchor);
            }
            if let Some(anchor) = self.miss_parked[i].take() {
                self.cores[i].ff_stall(self.now - anchor);
            }
        }
    }

    /// Replays every spin-parked core's elided span up to `now` and
    /// unparks it. Legal between ticks: every elided cycle provably saw
    /// the frozen probed line (a pending delivery unparks the core
    /// before the line can change), so the closed-form replay is exact.
    /// Called when active-set scheduling is turned off mid-run (the
    /// dense loop steps every core). Whole-machine fast-forward does
    /// NOT flush: it replays each spin-parked core from its own anchor
    /// straight to the jump target, so failed attempts never disturb
    /// the parks.
    fn flush_spin_parks(&mut self) {
        for i in 0..self.cores.len() {
            if let Some((plan, anchor)) = self.spin_parked[i].take() {
                self.cores[i].ff_replay(plan, self.now, anchor, &mut self.mem);
            }
        }
    }

    /// Enables or disables quiescence-aware cycle skipping (on by
    /// default). When every core is provably parked — stalled on the
    /// memory hierarchy, inside a `busy` block, or spinning in a
    /// recognized wait loop — [`run`](Self::run) jumps the clock to the
    /// next event instead of ticking cycle by cycle, replaying the
    /// skipped span's statistics in closed form. Reports are
    /// bit-identical either way; disabling is an escape hatch for
    /// debugging (`--no-skip` in the CLI). Traced systems always take
    /// the cycle-exact path regardless of this flag, so event streams
    /// are never elided.
    pub fn set_skip_enabled(&mut self, on: bool) {
        self.skip_enabled = on;
    }

    /// Whether quiescence-aware cycle skipping is enabled.
    pub fn skip_enabled(&self) -> bool {
        self.skip_enabled
    }

    /// Fast-forward effectiveness counters for this run so far.
    pub fn skip_stats(&self) -> SkipStats {
        self.skip_stats
    }

    /// Enables or disables active-set micro-scheduling across the whole
    /// machine — core parking here, busy-bank work lists in the memory
    /// hierarchy, router/injection/delivery work lists in the NoC (on
    /// by default). A component outside its subsystem's active set
    /// provably cannot transition this cycle, so reports, architectural
    /// memory and event traces are bit-identical either way; disabling
    /// is an escape hatch for debugging (`--no-active-set` in the CLI)
    /// and the reference path for `tests/active_set_determinism.rs`.
    pub fn set_active_set_enabled(&mut self, on: bool) {
        if !on {
            // The dense loop steps every core; settle pending park
            // charges and spin replays first.
            self.flush_parks();
            self.flush_spin_parks();
        }
        self.active_set_enabled = on;
        self.mem.set_active_set_enabled(on);
    }

    /// Whether active-set micro-scheduling is enabled.
    pub fn active_set_enabled(&self) -> bool {
        self.active_set_enabled
    }

    /// Core-scheduler occupancy counters for this run so far.
    pub fn core_sched_stats(&self) -> CoreSchedStats {
        self.sched
    }

    /// Memory-hierarchy occupancy counters for this run so far.
    pub fn mem_sched_stats(&self) -> sim_mem::MemSchedStats {
        self.mem.sched_stats()
    }

    /// NoC occupancy counters for this run so far.
    pub fn noc_sched_stats(&self) -> sim_noc::NocSchedStats {
        self.mem.noc_sched_stats()
    }

    /// Selects the parallel engine's rendezvous protocol (epoch-batched
    /// by default). Machine results are bit-identical under either
    /// protocol, any worker count, and any mid-run switch — only
    /// wall-clock and the [`sync_stats`](Self::sync_stats) counters
    /// differ (`--per-cycle-sync` in the CLI).
    pub fn set_sync_protocol(&mut self, p: SyncProtocol) {
        self.sync_protocol = p;
    }

    /// The parallel engine's rendezvous protocol.
    pub fn sync_protocol(&self) -> SyncProtocol {
        self.sync_protocol
    }

    /// Parallel-engine synchronization counters for this run so far.
    pub fn sync_stats(&self) -> SyncStats {
        self.sync
    }

    /// Advances one cycle — or, if skipping is permitted and the whole
    /// machine is quiescent, jumps to the next event (clamped to
    /// `horizon`, which callers use for deadline and progress-boundary
    /// alignment). Failed skip attempts are throttled with an
    /// exponential backoff so coherence-bound phases do not pay the
    /// attempt cost every cycle.
    fn advance(&mut self, horizon: Cycle) {
        if S::ENABLED || !self.skip_enabled || horizon <= self.now + 1 {
            self.tick();
            return;
        }
        if self.now < self.ff_resume_at {
            self.skip_stats.backed_off += 1;
            self.tick();
            return;
        }
        if self.try_fast_forward(horizon) {
            self.ff_backoff = 0;
        } else {
            self.ff_backoff = (self.ff_backoff * 2).clamp(1, MAX_FF_BACKOFF);
            self.ff_resume_at = self.now + self.ff_backoff;
            self.tick();
        }
    }

    /// Attempts a fast-forward jump. Returns `false` (machine untouched)
    /// when any component may change state within the next cycle; on
    /// `true` the clock has jumped to the earliest next event and every
    /// component has been advanced in closed form.
    fn try_fast_forward(&mut self, horizon: Cycle) -> bool {
        let mut target = horizon;
        if target <= self.now + 1 {
            return false;
        }
        self.skip_stats.attempts += 1;
        // Clamp on the component clocks first: while protocol traffic is
        // in flight the hierarchy reports an event within a cycle or two,
        // and bailing here skips the per-core classification entirely —
        // the common case on coherence-bound phases.
        if let Some(t) = self.mem.next_event() {
            target = target.min(t);
        }
        if let Some(t) = self.gline.next_event() {
            target = target.min(t);
        }
        if target <= self.now + 1 {
            self.skip_stats.fail_near += 1;
            return false;
        }
        for (i, core) in self.cores.iter().enumerate() {
            self.ff_plans[i] = None;
            if let Some((plan, anchor)) = &self.spin_parked[i] {
                // Already a recognized spin, frozen since its anchor:
                // no delivery has reached its tile (the park's wake
                // trigger), and none will before `target` (the clamp on
                // `mem.next_event` above). Replayed from its own anchor
                // on success; a replay-mode plan additionally bounds the
                // jump by its recorded iteration budget.
                if let Some(t) = plan.max_target(*anchor) {
                    target = target.min(t);
                }
                continue;
            }
            match core.ff_classify(&self.progs[i], &self.mem, &self.gline, self.now) {
                FfClass::Blocked => {
                    self.skip_stats.fail_blocked += 1;
                    return false;
                }
                FfClass::NoConstraint => {}
                FfClass::WakeAt(t) => target = target.min(t),
                FfClass::Spin(plan) => {
                    // A replay-mode spin cannot be skipped past its
                    // recorded iteration budget: clamp the jump so the
                    // closed-form replay never overruns the op (for
                    // genuine recordings an external wake always lands
                    // first, so the clamp is a hand-built-trace guard).
                    if let Some(t) = plan.max_target(self.now) {
                        target = target.min(t);
                    }
                    self.ff_plans[i] = Some(plan);
                }
            }
        }
        if target <= self.now + 1 {
            self.skip_stats.fail_near += 1;
            return false;
        }
        let k = target - self.now;
        self.skip_stats.skips += 1;
        self.skip_stats.cycles_skipped += k;
        // Parked spans are charged lazily; settle stall and miss parks
        // up to `now` before the closed-form replay charges
        // `now..target`. Spin parks replay their whole `[anchor,
        // target)` span in one step instead.
        self.flush_parks();
        for i in 0..self.cores.len() {
            if let Some((plan, anchor)) = self.spin_parked[i].take() {
                self.cores[i].ff_replay(plan, target, anchor, &mut self.mem);
            } else if let Some(plan) = self.ff_plans[i] {
                self.cores[i].ff_replay(plan, target, self.now, &mut self.mem);
            } else if !self.cores[i].halted() {
                self.cores[i].ff_stall(k);
            }
        }
        self.mem.skip_to(target);
        self.gline.skip_to(target);
        self.now = target;
        true
    }

    /// Runs until every core halts. Returns the cycle count.
    ///
    /// # Errors
    /// Returns an error naming the stuck cores if `max_cycles` elapses
    /// first (deadlock / livelock guard).
    pub fn run(&mut self, max_cycles: u64) -> Result<Cycle, String> {
        let start = self.now;
        while !self.all_halted() {
            self.advance(start + max_cycles + 1);
            if self.now - start > max_cycles {
                let stuck: Vec<String> = self
                    .cores
                    .iter()
                    .filter(|c| !c.halted())
                    .map(|c| format!("{:?}", c.id()))
                    .collect();
                return Err(format!(
                    "system did not halt within {max_cycles} cycles; still running: {}",
                    stuck.join(", ")
                ));
            }
        }
        Ok(self.now - start)
    }

    /// Like [`run`](Self::run), but invokes `observer` with a fresh
    /// [`SystemReport`] every `every` cycles — progress reporting for
    /// long simulations (the report is cumulative, not a delta).
    ///
    /// # Errors
    /// Same deadlock guard as [`run`](Self::run).
    pub fn run_with_progress(
        &mut self,
        max_cycles: u64,
        every: u64,
        mut observer: impl FnMut(&SystemReport),
    ) -> Result<Cycle, String> {
        assert!(every > 0);
        let start = self.now;
        let mut next = self.now + every;
        while !self.all_halted() {
            // Clamp skips to the observer boundary so the observer fires
            // at every `every`-cycle mark with the report as of exactly
            // that cycle, even when a jump would have crossed it.
            self.advance(next.min(start + max_cycles + 1));
            if self.now >= next {
                observer(&self.report());
                next += every;
            }
            if self.now - start > max_cycles {
                return Err(format!(
                    "system did not halt within {max_cycles} cycles; still running: {}",
                    self.cores
                        .iter()
                        .filter(|c| !c.halted())
                        .map(|c| format!("{:?}", c.id()))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(self.now - start)
    }

    /// Like [`run`](Self::run), but records every core's executed issue
    /// groups into a [`CoreTrace`] stream as it goes, returning the
    /// cycle count and one trace per core. The run is cycle-exact and
    /// dense (no skipping, no parking): the recorder must observe every
    /// executing cycle, and elided spans would hide them. A machine
    /// replaying those traces (see [`System::replay`]) reproduces this
    /// run's [`SystemReport`], architectural memory and event stream
    /// bit-identically.
    ///
    /// # Errors
    /// Same deadlock guard as [`run`](Self::run).
    ///
    /// # Panics
    /// Panics if the machine has already advanced (`now() != 0`) or if
    /// any core is itself replay-driven.
    pub fn run_recorded(&mut self, max_cycles: u64) -> Result<(Cycle, Vec<CoreTrace>), String> {
        assert_eq!(self.now, 0, "recording must start from a fresh machine");
        let mut rec = Recorder::new(self.cores.len());
        let mut writes: Vec<(u8, u64)> = Vec::new();
        while !self.all_halted() {
            let now = self.now;
            self.sched.ticks += 1;
            for i in 0..self.cores.len() {
                let CoreProg::Exec(prog) = &self.progs[i] else {
                    panic!("cannot re-record a replay-mode system");
                };
                let core = &mut self.cores[i];
                if !core.halted() {
                    self.sched.core_steps += 1;
                }
                let pre = Pre {
                    pc: core.pc() as u32,
                    retired: core.retired(),
                    region: core.cur_region(),
                    halted: core.halted(),
                };
                let mut rmem = RecMem::new(&mut self.mem);
                {
                    let mut rgl = RecGline::new(&mut self.gline, &mut writes);
                    core.step(&self.progs[i], &mut rmem, &mut rgl, now, &self.tracer);
                }
                rec.record_step(i, prog, pre, core, &rmem, &mut writes, now);
            }
            self.mem.tick();
            self.gline.tick();
            self.now += 1;
            if self.now > max_cycles {
                let stuck: Vec<String> = self
                    .cores
                    .iter()
                    .filter(|c| !c.halted())
                    .map(|c| format!("{:?}", c.id()))
                    .collect();
                return Err(format!(
                    "system did not halt within {max_cycles} cycles; still running: {}",
                    stuck.join(", ")
                ));
            }
        }
        Ok((self.now, rec.finish()))
    }

    /// Like [`run`](Self::run), but advances each cycle with `workers`
    /// shard threads — the sharded-tick parallel engine (`DESIGN.md`
    /// §11). Results are **bit-identical** to [`run`](Self::run): same
    /// [`SystemReport`], same architectural memory, same scheduler and
    /// skip statistics (`tests/parallel_determinism.rs`).
    ///
    /// `workers` is clamped to `1..=num_cores`; a clamped value of 1 —
    /// or a traced system, whose event stream is defined by the serial
    /// interleaving — falls back to the serial engine.
    ///
    /// # Errors
    /// Same deadlock guard as [`run`](Self::run).
    pub fn run_with_workers(&mut self, max_cycles: u64, workers: usize) -> Result<Cycle, String> {
        let start = self.now;
        self.advance_until_with_workers(start + max_cycles + 1, workers);
        if self.now - start > max_cycles {
            let stuck: Vec<String> = self
                .cores
                .iter()
                .filter(|c| !c.halted())
                .map(|c| format!("{:?}", c.id()))
                .collect();
            Err(format!(
                "system did not halt within {max_cycles} cycles; still running: {}",
                stuck.join(", ")
            ))
        } else {
            Ok(self.now - start)
        }
    }

    /// Advances the machine with `workers` shard threads until every
    /// core halts or the clock reaches `until` (whichever comes first;
    /// skips clamp to `until` exactly like [`run`](Self::run)'s
    /// deadline horizon). The worker pool lives only for this call, so
    /// the worker count — and the [`SyncProtocol`] — may differ from
    /// one call to the next: the machine state cannot tell the
    /// difference.
    pub fn advance_until_with_workers(&mut self, until: Cycle, workers: usize) {
        let n = self.cores.len();
        let w = sim_base::shard::clamp_workers(workers, n);
        if S::ENABLED || w <= 1 {
            while !self.all_halted() && self.now < until {
                self.advance(until);
            }
            return;
        }
        match self.sync_protocol {
            SyncProtocol::Epoch => self.advance_until_epoch(until, w),
            SyncProtocol::PerCycle => self.advance_until_per_cycle(until, w),
        }
    }

    /// The per-cycle protocol's scope: one pool of workers, two barrier
    /// crossings per ticked cycle.
    fn advance_until_per_cycle(&mut self, until: Cycle, w: usize) {
        let n = self.cores.len();
        let shards = sim_base::shard::shard_ranges(n, w);
        let mut flags: Vec<bool> = Vec::with_capacity(n);
        self.mem.delivery_flags(&mut flags);
        let init = self.cycle_ptrs(&flags);
        let ctx = par::CycleCtx::new(shards, init);
        let mut sense = false;
        std::thread::scope(|scope| {
            for wk in 1..w {
                let ctx = &ctx;
                scope.spawn(move || par::worker_loop(ctx, wk));
            }
            while !self.all_halted() && self.now < until {
                self.advance_parallel(&ctx, &mut sense, &mut flags, until);
            }
            ctx.stop.store(true, std::sync::atomic::Ordering::Release);
            // Wake the workers one last time so they observe the stop
            // flag (the release-barrier wait is the wake edge).
            ctx.barrier.wait(&mut sense);
        });
        self.sync.crossings += ctx.barrier.counters().crossings;
        self.sync.wakeups += ctx.barrier.counters().wakeups;
    }

    /// The epoch protocol's scope (`DESIGN.md` §13): one pool of
    /// workers parked on per-shard doorbells, one gate crossing per
    /// multi-cycle epoch, idle shards never woken.
    fn advance_until_epoch(&mut self, until: Cycle, w: usize) {
        let n = self.cores.len();
        let shards = sim_base::shard::shard_ranges(n, w);
        let mut scratch = EpochScratch::default();
        // Throwaway snapshot — workers never read `ptrs` before the
        // first `run_epoch` refresh.
        let init = self.epoch_ptrs(std::ptr::null(), self.now, 0);
        let ctx = par::EpochCtx::new(shards, init);
        std::thread::scope(|scope| {
            for wk in 1..w {
                let ctx = &ctx;
                scope.spawn(move || par::epoch_worker_loop(ctx, wk));
            }
            while !self.all_halted() && self.now < until {
                self.advance_epoch(&ctx, &mut scratch, until);
            }
            ctx.gate.close();
        });
        self.sync.crossings += ctx.gate.counters().crossings;
        self.sync.wakeups += ctx.gate.counters().wakeups;
    }

    /// [`advance`](Self::advance) with the dense tick replaced by an
    /// epoch free-run. The skip machinery is shared verbatim; what the
    /// serial engine does cycle by cycle, this driver does one epoch at
    /// a time, reproducing the skip statistics exactly:
    ///
    /// * the serial loop never counts `backed_off` on a cycle it ticks
    ///   because the horizon is within one cycle, so a backed-off epoch
    ///   that ends exactly at the horizon counts one cycle fewer;
    /// * a failed fast-forward is followed by a single dense cycle (a
    ///   width-1 epoch), never counted as backed off.
    fn advance_epoch(
        &mut self,
        ectx: &par::EpochCtx<B, S>,
        scratch: &mut EpochScratch,
        horizon: Cycle,
    ) {
        if !self.skip_enabled || horizon <= self.now + 1 {
            self.run_epoch(ectx, scratch, horizon);
            return;
        }
        if self.now < self.ff_resume_at {
            let limit = horizon.min(self.ff_resume_at);
            let w = self.run_epoch(ectx, scratch, limit);
            self.skip_stats.backed_off += if self.now == horizon { w - 1 } else { w };
            return;
        }
        if self.try_fast_forward(horizon) {
            self.ff_backoff = 0;
        } else {
            self.ff_backoff = (self.ff_backoff * 2).clamp(1, MAX_FF_BACKOFF);
            self.ff_resume_at = self.now + self.ff_backoff;
            self.run_epoch(ectx, scratch, self.now + 1);
        }
    }

    /// Runs one epoch: pre-drains matured NoC deliveries into the tile
    /// inboxes, sizes the free-run window (see
    /// [`epoch_window`](Self::epoch_window)), classifies tiles and
    /// shards, free-runs the active shards in parallel (this thread
    /// doubles as worker 0 and also settles the skipped shards'
    /// closed-form park accounting), then serializes the apply phase —
    /// latched barrier writes in `(cycle, core)` order, outbox
    /// injections in the serial global send order, one `mem`/`gline`
    /// tick per window cycle. Returns the window length.
    fn run_epoch(
        &mut self,
        ectx: &par::EpochCtx<B, S>,
        scratch: &mut EpochScratch,
        limit: Cycle,
    ) -> u64 {
        let s = self.now;
        debug_assert!(limit > s, "empty epoch");
        self.mem.epoch_predrain();
        let w = self.epoch_window(limit);
        let end = s + w;
        scratch.active.clear();
        for i in 0..self.cores.len() {
            scratch.active.push(!self.epoch_tile_idle(i, end));
        }
        scratch.shard_active.clear();
        for &(lo, hi) in &ectx.shards {
            scratch
                .shard_active
                .push(scratch.active[lo..hi].iter().any(|&a| a));
        }
        let rung = scratch.shard_active[1..].iter().filter(|&&a| a).count();
        // SAFETY: every worker is parked (no epoch is open), so the
        // snapshot write is exclusive; the raw pointers are re-derived
        // here and die at the gate join below.
        unsafe {
            *ectx.ptrs.get() = self.epoch_ptrs(scratch.active.as_ptr(), s, w);
        }
        ectx.gate.open_epoch(&scratch.shard_active);
        for (k, &(lo, hi)) in ectx.shards.iter().enumerate() {
            if k == 0 || !scratch.shard_active[k] {
                // SAFETY: shard 0 is this thread's; a skipped shard's
                // worker was never rung, so its range and out slot are
                // also exclusively ours. Between open and join, `self`
                // is only touched through the snapshot.
                unsafe {
                    par::epoch_shard_phase(&*ectx.ptrs.get(), lo, hi, &mut *ectx.outs[k].get());
                }
            }
        }
        ectx.gate.join(rung);
        scratch.latch.clear();
        let mut home_visits = 0;
        let mut delivery_visits = 0;
        for out in &ectx.outs {
            // SAFETY: every rung worker has arrived; the outs are ours.
            let out = unsafe { &mut *out.get() };
            scratch.latch.append(&mut out.latch);
            self.sched += out.sched;
            out.sched = CoreSchedStats::default();
            home_visits += std::mem::take(&mut out.home_visits);
            delivery_visits += std::mem::take(&mut out.delivery_visits);
        }
        // Ascending-shard append order is ascending-tile order, so a
        // stable sort by cycle alone yields the serial core loop's
        // `(cycle, core)` replay order.
        scratch.latch.sort_by_key(|&(c, _, _, _)| c);
        self.mem.epoch_collect_injections();
        let mut cursor = 0;
        for c in s..end {
            while scratch
                .latch
                .get(cursor)
                .is_some_and(|&(wc, _, _, _)| wc == c)
            {
                let (_, core, bctx, v) = scratch.latch[cursor];
                self.gline.write_bar_reg(core, bctx, v);
                cursor += 1;
            }
            self.mem.epoch_apply_tick(c + 1 == end);
            self.gline.tick();
        }
        debug_assert_eq!(cursor, scratch.latch.len(), "latched write outside window");
        self.mem.epoch_sync_homes(&scratch.active);
        self.mem
            .add_epoch_sched_visits(home_visits, delivery_visits);
        self.sched.ticks += w;
        self.now = end;
        self.sync.epochs += 1;
        self.sync.par_cycles += w;
        self.sync.shard_epochs_skipped +=
            scratch.shard_active.iter().filter(|&&a| !a).count() as u64;
        w
    }

    /// Sizes the free-run window starting at `now`: the largest span in
    /// which no cross-tile effect can land (`DESIGN.md` §13 gives the
    /// full safety argument). Every clamp is an *exclusive* end bound:
    ///
    /// * `limit` — the caller's horizon (deadline, backoff boundary).
    /// * G-line visibility: barrier state is shared by wire, but the
    ///   only cross-core observable is a core's own `bar_reg` clearing
    ///   (arrivals by others are invisible until the release). So the
    ///   window only has to stop before the earliest possible *clear*,
    ///   which [`BarrierHw::release_bound`] lower-bounds: the hardware's
    ///   propagation floor while any member is still missing — even if
    ///   the last arrival lands on the window's first cycle — collapsing
    ///   to 1 once every member has arrived and the release wave may be
    ///   in flight. Arrival writes inside the window are latched and
    ///   applied in the serialized phase, so gather progress mid-window
    ///   is safe. Software-barrier programs never touch the network
    ///   (`uses_gline` is false) and skip the clamp.
    /// * In-flight NoC deliveries: a message maturing at the end of
    ///   cycle `m` is handled at `m + 1`, which must be the first cycle
    ///   of some later epoch (its pre-drain picks it up).
    /// * New sends: nothing sent at or after `e0` (the earliest cycle
    ///   any tile can inject) can be *handled* before
    ///   `e0 + min_remote_delivery_latency + 1`.
    /// * Halt: the serial run loop stops the clock one cycle after the
    ///   last halt retires; the window must not overrun the earliest
    ///   cycle that could be.
    fn epoch_window(&mut self, limit: Cycle) -> u64 {
        let s = self.now;
        let mut end = limit;
        if self.uses_gline {
            end = end.min(s + self.gline.release_bound().max(1));
        }
        if let Some(m) = self.mem.earliest_delivery_maturation() {
            end = end.min(m + 1);
        }
        let e0 = self.earliest_send_cycle();
        if e0 != Cycle::MAX {
            end = end.min(e0.saturating_add(self.mem.min_remote_delivery_latency() + 1));
        }
        let t = self.all_halt_bound();
        if t != Cycle::MAX {
            end = end.min(t + 1);
        }
        debug_assert!(end > s, "window clamped to nothing");
        end - s
    }

    /// The earliest cycle at which *any* tile could inject a message
    /// into the NoC this epoch ([`Cycle::MAX`] = none can). A tile with
    /// pending local work can send immediately; a live core likewise; a
    /// stall-parked core not before its wake; a spin- or miss-parked
    /// core on a workless tile cannot act at all until a delivery
    /// reaches it — and the other window clamps guarantee none does.
    fn earliest_send_cycle(&self) -> Cycle {
        let s = self.now;
        let mut e0 = Cycle::MAX;
        for i in 0..self.cores.len() {
            if self.mem.epoch_tile_has_work(i) {
                return s;
            }
            let core = &self.cores[i];
            if core.halted() {
                continue;
            }
            if let Some((wake, _)) = self.parked[i] {
                e0 = e0.min(wake.max(s));
            } else if self.spin_parked[i].is_some() || self.miss_parked[i].is_some() {
                continue;
            } else {
                return s;
            }
        }
        e0
    }

    /// A lower bound on the cycle at which core `i`'s `halt` retires
    /// ([`Cycle::MAX`] = provably cannot this epoch): the earliest
    /// cycle the core can step again, plus its halt-distance table's
    /// instruction count at the current pc, at full issue width.
    fn core_halt_bound(&self, i: usize) -> Cycle {
        let s = self.now;
        let core = &self.cores[i];
        let base = if let Some((wake, _)) = self.parked[i] {
            wake.max(s)
        } else if self.spin_parked[i].is_some() || self.miss_parked[i].is_some() {
            if self.mem.epoch_tile_has_work(i) {
                s
            } else {
                return Cycle::MAX;
            }
        } else {
            s
        };
        match &self.halt_bounds[i] {
            HaltBound::Exec(dist) => {
                let d = dist.get(core.pc()).copied().unwrap_or(1);
                if d == u32::MAX {
                    return Cycle::MAX;
                }
                let iw = u64::from(self.cfg.core.issue_width).max(1);
                base + u64::from(d).div_ceil(iw) - 1
            }
            HaltBound::Replay { ops } => {
                let rem = ops.saturating_sub(core.rp_op()).max(1) as u64;
                base + rem - 1
            }
        }
    }

    /// The earliest cycle by which every core could have halted
    /// ([`Cycle::MAX`] = some core provably cannot this epoch). The
    /// serial run loop ticks every cycle up to and including the actual
    /// last halt, which this bounds from below.
    fn all_halt_bound(&self) -> Cycle {
        let mut t = self.now;
        for i in 0..self.cores.len() {
            if self.cores[i].halted() {
                continue;
            }
            let b = self.core_halt_bound(i);
            if b == Cycle::MAX {
                return Cycle::MAX;
            }
            t = t.max(b);
        }
        t
    }

    /// True when tile `i` provably does nothing in `[now, end)`: no
    /// pending tile work (inbox, busy home) and a core that cannot step
    /// — halted, parked past the window, or parked on a delivery that
    /// the window clamps guarantee cannot arrive. The dense scheduler
    /// never parks, so there only a halted core idles its tile.
    fn epoch_tile_idle(&self, i: usize, end: Cycle) -> bool {
        if self.mem.epoch_tile_has_work(i) {
            return false;
        }
        let core = &self.cores[i];
        if core.halted() {
            return true;
        }
        if !self.active_set_enabled {
            return false;
        }
        if self.spin_parked[i].is_some() || self.miss_parked[i].is_some() {
            return true;
        }
        matches!(self.parked[i], Some((wake, _)) if wake >= end)
    }

    /// The per-epoch pointer snapshot handed to the workers.
    fn epoch_ptrs(
        &mut self,
        tile_active: *const bool,
        start: Cycle,
        window: u64,
    ) -> par::EpochPtrs<B, S> {
        par::EpochPtrs {
            cores: self.cores.as_mut_ptr(),
            progs: self.progs.as_ptr(),
            parked: self.parked.as_mut_ptr(),
            spin_parked: self.spin_parked.as_mut_ptr(),
            miss_parked: self.miss_parked.as_mut_ptr(),
            tiles: self.mem.epoch_tiles(),
            tile_active,
            gline: &self.gline,
            tracer: &self.tracer,
            start,
            window,
            active_set: self.active_set_enabled,
        }
    }

    /// [`advance`](Self::advance) with the dense tick replaced by a
    /// sharded parallel tick. The skip path is untouched: quiescence
    /// probing and closed-form replay run on the coordinator while the
    /// workers sit parked at the release barrier — parking *is* the
    /// AND-reduction of the per-shard quiescence votes, because a
    /// parked worker has published all its state to the coordinator.
    fn advance_parallel(
        &mut self,
        ctx: &par::CycleCtx<B, S>,
        sense: &mut bool,
        flags: &mut Vec<bool>,
        horizon: Cycle,
    ) {
        if S::ENABLED || !self.skip_enabled || horizon <= self.now + 1 {
            self.tick_parallel(ctx, sense, flags);
            return;
        }
        if self.now < self.ff_resume_at {
            self.skip_stats.backed_off += 1;
            self.tick_parallel(ctx, sense, flags);
            return;
        }
        if self.try_fast_forward(horizon) {
            self.ff_backoff = 0;
        } else {
            self.ff_backoff = (self.ff_backoff * 2).clamp(1, MAX_FF_BACKOFF);
            self.ff_resume_at = self.now + self.ff_backoff;
            self.tick_parallel(ctx, sense, flags);
        }
    }

    /// One sharded-tick cycle: freeze the delivery flags, publish the
    /// cycle's pointer snapshot, run the compute phase (this thread
    /// doubles as worker 0), then serialize the exchange — latched
    /// barrier arrivals in ascending core order, outbox flushes in
    /// ascending tile order, shared component ticks — exactly the
    /// serial [`tick`](Self::tick)'s effect order.
    fn tick_parallel(
        &mut self,
        ctx: &par::CycleCtx<B, S>,
        sense: &mut bool,
        flags: &mut Vec<bool>,
    ) {
        self.sched.ticks += 1;
        self.mem.delivery_flags(flags);
        // SAFETY: every worker is parked at the release barrier, so the
        // snapshot write is exclusive; the raw pointers are re-derived
        // here and die at the join barrier below.
        unsafe {
            *ctx.ptrs.get() = self.cycle_ptrs(flags);
        }
        ctx.barrier.wait(sense); // release: compute phase begins
        let (lo, hi) = ctx.shards[0];
        // SAFETY: shard 0 is this thread's; between the barriers `self`
        // is only touched through the snapshot, like any other worker.
        unsafe {
            par::shard_phase(&*ctx.ptrs.get(), lo, hi, &mut *ctx.outs[0].get());
        }
        ctx.barrier.wait(sense); // join: all shard effects are visible
        for out in &ctx.outs {
            // SAFETY: workers are parked again; the outs are ours.
            let out = unsafe { &mut *out.get() };
            for (_, core, bctx, v) in out.latch.drain(..) {
                self.gline.write_bar_reg(core, bctx, v);
            }
            self.sched += out.sched;
            out.sched = CoreSchedStats::default();
        }
        self.mem.flush_shard_outboxes();
        self.mem.tick();
        self.gline.tick();
        self.now += 1;
        self.sync.par_cycles += 1;
    }

    /// The per-cycle pointer snapshot handed to the workers.
    fn cycle_ptrs(&mut self, flags: &[bool]) -> par::Ptrs<B, S> {
        par::Ptrs {
            cores: self.cores.as_mut_ptr(),
            progs: self.progs.as_ptr(),
            parked: self.parked.as_mut_ptr(),
            spin_parked: self.spin_parked.as_mut_ptr(),
            miss_parked: self.miss_parked.as_mut_ptr(),
            lanes: self.mem.tile_lanes(),
            flags: flags.as_ptr(),
            gline: &self.gline,
            tracer: &self.tracer,
            now: self.now,
            active_set: self.active_set_enabled,
        }
    }

    /// Gathers the run's statistics.
    pub fn report(&self) -> SystemReport {
        let mut per_core: Vec<TimeBreakdown> = self.cores.iter().map(Core::breakdown).collect();
        // Parked cores' stall spans are charged lazily at wake-up; fold
        // the pending `[anchor, now)` span in so a mid-run report is
        // bit-identical to the dense path's (the charged category is
        // frozen while parked).
        for (i, p) in self.parked.iter().enumerate() {
            if let Some((_, anchor)) = *p {
                per_core[i].add(self.cores[i].category(), self.now - anchor);
            }
        }
        for (i, p) in self.miss_parked.iter().enumerate() {
            if let Some(anchor) = *p {
                per_core[i].add(self.cores[i].category(), self.now - anchor);
            }
        }
        // Same for spin-parked cores, whose pending spans also carry
        // retires and L1 hits; `spin_pending_stats` previews exactly
        // what the eventual replay will charge.
        let mut pending_retired = 0;
        let mut pending_l1_hits = 0;
        for (i, p) in self.spin_parked.iter().enumerate() {
            if let Some((plan, anchor)) = p {
                let (cat_a, a, cat_b, b, retired, hits) =
                    self.cores[i].spin_pending_stats(plan, self.now - anchor);
                per_core[i].add(cat_a, a);
                per_core[i].add(cat_b, b);
                pending_retired += retired;
                pending_l1_hits += hits;
            }
        }
        let mut total_time = TimeBreakdown::new();
        for b in &per_core {
            total_time += *b;
        }
        let noc = self.mem.noc_stats();
        let gl = self.gline.stats(0);
        let mut l1_hits = 0;
        let mut l1_misses = 0;
        for i in 0..self.cores.len() {
            let s = self.mem.l1_stats(CoreId::from(i));
            l1_hits += s.hits;
            l1_misses += s.misses;
        }
        let home = self.mem.home_stats();
        SystemReport {
            cycles: self.now,
            per_core,
            total_time,
            traffic: noc.sent,
            flit_hops: noc.flit_hops,
            gl_barriers: gl.barriers_completed,
            gl_mean_latency: gl.mean_latency(),
            gl_signals: gl.signals,
            instructions: self.cores.iter().map(Core::retired).sum::<u64>() + pending_retired,
            l1_hits: l1_hits + pending_l1_hits,
            l1_misses,
            l2_hits: home.l2_hits,
            l2_misses: home.l2_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{emit_lock, emit_unlock, BarrierEnv, BarrierKind};
    use sim_base::stats::TimeCat;
    use sim_isa::interp::RefCmp;
    use sim_isa::{assemble, ProgBuilder, Reg};

    fn cfg(n: usize) -> CmpConfig {
        CmpConfig::icpp2010_with_cores(n)
    }

    #[test]
    fn single_core_computation_matches_reference() {
        let src = "
            li r1, 0x800      # base
            li r2, 20         # n
            li r3, 0          # i
            li r4, 0          # acc
        loop:
            mul r5, r3, r3
            st r5, 0(r1)
            ld r6, 0(r1)
            add r4, r4, r6
            addi r1, r1, 64
            addi r3, r3, 1
            bne r3, r2, loop
            st r4, 0(r1)
            halt
        ";
        let prog = assemble(src).unwrap();
        // Reference result.
        let mut rc = RefCmp::new(1, 4096);
        rc.run(&[&prog], 1_000_000).unwrap();
        // Cycle-accurate result.
        let mut sys = System::homogeneous(cfg(1), prog);
        sys.run(1_000_000).unwrap();
        let final_addr = 0x800 + 20 * 64;
        assert_eq!(sys.peek_word(final_addr), rc.word(final_addr));
        assert_eq!(
            sys.peek_word(final_addr),
            (0..20u64).map(|i| i * i).sum::<u64>()
        );
    }

    #[test]
    fn four_cores_gl_barrier_round() {
        // Each core stores its id, hits the GL barrier, then sums all
        // stored ids — the barrier must make every store visible.
        let n = 4;
        let env = BarrierEnv::new(BarrierKind::Gl, n, 4096);
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                b.li(Reg(1), c as i64 + 1)
                    .li(Reg(2), (0x1000 + c * 64) as i64)
                    .st(Reg(1), 0, Reg(2));
                env.emit(&mut b, c, "x");
                b.li(Reg(4), 0);
                for p in 0..n {
                    b.li(Reg(2), (0x1000 + p * 64) as i64)
                        .ld(Reg(3), 0, Reg(2))
                        .add(Reg(4), Reg(4), Reg(3));
                }
                b.li(Reg(2), (0x2000 + c * 64) as i64)
                    .st(Reg(4), 0, Reg(2))
                    .halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(1_000_000).unwrap();
        for c in 0..n {
            assert_eq!(
                sys.peek_word(0x2000 + c as u64 * 64),
                10,
                "core {c} missed a store"
            );
        }
        let rep = sys.report();
        assert_eq!(rep.gl_barriers, 1);
        assert!(
            (rep.gl_mean_latency - 4.0).abs() < 1e-9,
            "{}",
            rep.gl_mean_latency
        );
        assert!(rep.total_time[TimeCat::Barrier] > 0);
    }

    /// All three barrier kinds agree architecturally with the reference
    /// machine on a multi-barrier producer/consumer pattern.
    fn barrier_agreement(kind: BarrierKind, n: usize, iters: usize) {
        let env = BarrierEnv::new(kind, n, 4096);
        let slot = |c: usize| 0x4000 + c as u64 * 64;
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                // r10 = running checksum of neighbour values.
                for it in 0..iters {
                    // Phase 1: write it+1 to my slot.
                    b.li(Reg(1), it as i64 + 1)
                        .li(Reg(2), slot(c) as i64)
                        .st(Reg(1), 0, Reg(2));
                    env.emit(&mut b, c, &format!("a{it}"));
                    // Phase 2: read my right neighbour's slot; it must be
                    // exactly it+1.
                    let nb = (c + 1) % n;
                    b.li(Reg(2), slot(nb) as i64).ld(Reg(3), 0, Reg(2)).add(
                        Reg(10),
                        Reg(10),
                        Reg(3),
                    );
                    env.emit(&mut b, c, &format!("b{it}"));
                }
                b.li(Reg(2), (0x8000 + c * 64) as i64)
                    .st(Reg(10), 0, Reg(2))
                    .halt();
                b.build()
            })
            .collect();
        let expected: u64 = (1..=iters as u64).sum();
        let mut sys = System::new(cfg(n), progs);
        sys.run(20_000_000).unwrap();
        for c in 0..n {
            assert_eq!(
                sys.peek_word(0x8000 + c as u64 * 64),
                expected,
                "{kind:?} n={n} core {c}: barrier failed to order the phases"
            );
        }
    }

    #[test]
    fn gl_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Gl, 8, 4);
    }

    #[test]
    fn csw_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Csw, 8, 4);
    }

    #[test]
    fn dsw_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Dsw, 8, 4);
    }

    #[test]
    fn dsw_barrier_odd_core_count() {
        barrier_agreement(BarrierKind::Dsw, 6, 3);
    }

    #[test]
    fn locks_are_mutually_exclusive_under_real_timing() {
        let n = 4;
        let lock = 4096u64;
        let counter = 8192u64;
        let per_core = 10;
        let progs: Vec<Program> = (0..n)
            .map(|_| {
                let mut b = ProgBuilder::new();
                b.li(Reg(10), per_core);
                b.label("loop");
                emit_lock(&mut b, lock, "l");
                b.li(Reg(3), counter as i64)
                    .ld(Reg(4), 0, Reg(3))
                    .addi(Reg(4), Reg(4), 1)
                    .st(Reg(4), 0, Reg(3));
                emit_unlock(&mut b, lock);
                b.addi(Reg(10), Reg(10), -1)
                    .bne(Reg(10), Reg::ZERO, "loop")
                    .halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(10_000_000).unwrap();
        assert_eq!(sys.peek_word(counter), n as u64 * per_core as u64);
        let rep = sys.report();
        assert!(
            rep.total_time[TimeCat::Lock] > 0,
            "lock time must be attributed"
        );
    }

    #[test]
    fn gl_beats_software_barriers_in_cycles() {
        // The headline claim, miniaturized: a pure barrier loop completes
        // fastest with GL, and DSW beats CSW at 16 cores.
        let n = 16;
        let iters = 10;
        let mut cycles = Vec::new();
        for kind in BarrierKind::ALL {
            let env = BarrierEnv::new(kind, n, 4096);
            let progs: Vec<Program> = (0..n)
                .map(|c| {
                    let mut b = ProgBuilder::new();
                    for it in 0..iters {
                        env.emit(&mut b, c, &format!("i{it}"));
                    }
                    b.halt();
                    b.build()
                })
                .collect();
            let mut sys = System::new(cfg(n), progs);
            let t = sys.run(50_000_000).unwrap();
            cycles.push((kind, t));
        }
        let gl = cycles[0].1;
        let csw = cycles[1].1;
        let dsw = cycles[2].1;
        assert!(
            gl < dsw && dsw < csw,
            "expected GL < DSW < CSW, got {cycles:?}"
        );
        assert!(
            gl * 5 < csw,
            "GL should dominate CSW by a wide margin: {cycles:?}"
        );
    }

    #[test]
    fn gl_barrier_generates_no_network_traffic() {
        let n = 8;
        let env = BarrierEnv::new(BarrierKind::Gl, n, 4096);
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                for it in 0..5 {
                    env.emit(&mut b, c, &format!("i{it}"));
                }
                b.halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(1_000_000).unwrap();
        let rep = sys.report();
        assert_eq!(
            rep.traffic.total(),
            0,
            "the GL barrier must not touch the NoC"
        );
        assert_eq!(rep.gl_barriers, 5);
        assert!(rep.gl_signals > 0);
    }

    #[test]
    fn group_barriers_via_contexts() {
        // Two independent 4-core groups on an 8-core machine, each
        // synchronizing through its own barrier context: group 0 runs
        // many short episodes while group 1 runs few long ones — neither
        // may block the other.
        let n = 8;
        let mut c = cfg(n);
        c.gline.contexts = 2;
        let progs: Vec<Program> = (0..n)
            .map(|core| {
                let group = core / 4;
                let mut b = ProgBuilder::new();
                b.barctx(group as u8);
                let (episodes, work) = if group == 0 { (20, 5) } else { (2, 400) };
                for ep in 0..episodes {
                    b.busy(work);
                    // Arrive and spin, group-local.
                    let lbl = format!("w{ep}");
                    b.li(Reg(1), 1).barw(Reg(1)).label(&lbl).barr(Reg(2)).bne(
                        Reg(2),
                        Reg::ZERO,
                        &lbl,
                    );
                }
                b.halt();
                b.build()
            })
            .collect();
        let masks: Vec<Vec<bool>> = vec![
            (0..n).map(|i| i < 4).collect(),
            (0..n).map(|i| i >= 4).collect(),
        ];
        let mut sys = System::with_barrier_masks(c, progs, masks);
        sys.run(1_000_000).unwrap();
        // 20 episodes in ctx 0 (by 4 cores) + 2 in ctx 1: the gl_barriers
        // counter counts per-core arrivals-episodes entered.
        assert_eq!(sys.core(CoreId(0)).gl_barriers(), 20);
        assert_eq!(sys.core(CoreId(7)).gl_barriers(), 2);
    }

    #[test]
    #[should_panic(expected = "barctx")]
    fn out_of_range_barctx_panics() {
        let prog = sim_isa::assemble(
            "barctx 3
halt",
        )
        .unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let _ = sys.run(100);
    }

    #[test]
    fn system_runs_on_tdm_barrier_hardware() {
        use gline_core::TdmBarrierNetwork;
        // The same 5-episode barrier loop on flat vs TDM hardware (four
        // logical barriers sharing one wire set; the program uses slot 0):
        // TDM must be correct and strictly slower.
        let n = 8;
        let barrier_loop = || -> Vec<Program> {
            (0..n)
                .map(|_| {
                    let mut b = ProgBuilder::new();
                    for ep in 0..5 {
                        let lbl = format!("w{ep}");
                        b.li(Reg(1), 1).barw(Reg(1)).label(&lbl).barr(Reg(2)).bne(
                            Reg(2),
                            Reg::ZERO,
                            &lbl,
                        );
                    }
                    b.halt();
                    b.build()
                })
                .collect()
        };
        let c = cfg(n);
        let hw = TdmBarrierNetwork::new(c.mesh, c.gline, 4);
        let mut tdm = System::with_barrier_hw(c, barrier_loop(), hw);
        let tdm_cycles = tdm.run(1_000_000).unwrap();
        let mut flat = System::new(cfg(n), barrier_loop());
        let flat_cycles = flat.run(1_000_000).unwrap();
        assert!(
            tdm_cycles > flat_cycles,
            "TDM slots must cost latency: {tdm_cycles} vs {flat_cycles}"
        );
        assert_eq!(tdm.report().gl_barriers, 5);
        assert_eq!(flat.report().gl_barriers, 5);
    }

    #[test]
    fn progress_observer_fires_periodically() {
        let prog = sim_isa::assemble("busy 1000\nhalt").unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let mut samples = Vec::new();
        sys.run_with_progress(10_000, 100, |rep| samples.push(rep.cycles))
            .unwrap();
        assert!(
            samples.len() >= 9,
            "expected ~10 samples, got {}",
            samples.len()
        );
        assert!(samples.windows(2).all(|w| w[1] - w[0] == 100));
    }

    #[test]
    fn report_serializes() {
        let mut sys = System::homogeneous(cfg(1), assemble("busy 5\nhalt").unwrap());
        sys.run(100).unwrap();
        let rep = sys.report();
        let json = sim_base::json::ToJson::to_json(&rep).dump();
        assert!(json.contains("\"cycles\""));
    }

    #[test]
    fn deadlock_guard_reports_stuck_cores() {
        // A core spinning forever on its own flag never halts.
        let prog = assemble("l: ld r1, 0(r0)\nbeq r0, r0, l").unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let err = sys.run(10_000).unwrap_err();
        assert!(err.contains("core0") && err.contains("core1"), "{err}");
    }

    #[test]
    fn parallel_deadlock_guard_matches_serial() {
        let prog = assemble("l: ld r1, 0(r0)\nbeq r0, r0, l").unwrap();
        let mut serial = System::homogeneous(cfg(4), prog.clone());
        let mut par = System::homogeneous(cfg(4), prog);
        let want = serial.run(10_000).unwrap_err();
        let got = par.run_with_workers(10_000, 2).unwrap_err();
        assert_eq!(want, got);
        assert_eq!(serial.now(), par.now());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        // A quick in-crate smoke; the exhaustive sweep lives in
        // tests/parallel_determinism.rs.
        let build = || {
            let n = 8;
            let env = BarrierEnv::new(BarrierKind::Csw, n, 4096);
            let progs: Vec<Program> = (0..n)
                .map(|c| {
                    let mut b = ProgBuilder::new();
                    for it in 0..3 {
                        b.li(Reg(1), (0x4000 + c * 64) as i64)
                            .li(Reg(2), it as i64)
                            .st(Reg(2), 0, Reg(1));
                        env.emit(&mut b, c, &format!("i{it}"));
                    }
                    b.halt();
                    b.build()
                })
                .collect();
            System::new(cfg(n), progs)
        };
        let mut serial = build();
        let t0 = serial.run(10_000_000).unwrap();
        for workers in [2, 3, 8] {
            let mut par = build();
            let t = par.run_with_workers(10_000_000, workers).unwrap();
            assert_eq!(t0, t, "{workers} workers: cycle count diverged");
            assert_eq!(serial.report(), par.report(), "{workers} workers");
            assert_eq!(serial.skip_stats(), par.skip_stats(), "{workers} workers");
            assert_eq!(
                serial.core_sched_stats(),
                par.core_sched_stats(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn record_then_replay_is_bit_identical() {
        // In-crate smoke across all three barrier kinds; the exhaustive
        // workload × toggle × worker sweep lives in
        // tests/replay_lockstep.rs.
        for kind in BarrierKind::ALL {
            let n = 8;
            let build = || {
                let env = BarrierEnv::new(kind, n, 4096);
                let progs: Vec<Program> = (0..n)
                    .map(|c| {
                        let mut b = ProgBuilder::new();
                        for it in 0..3 {
                            b.li(Reg(1), (0x4000 + c * 64) as i64)
                                .li(Reg(2), it as i64 + 1)
                                .st(Reg(2), 0, Reg(1));
                            env.emit(&mut b, c, &format!("i{it}"));
                        }
                        b.halt();
                        b.build()
                    })
                    .collect();
                System::new(cfg(n), progs)
            };
            let mut exec = build();
            let t0 = exec.run(10_000_000).unwrap();
            let (rec_cycles, traces) = build().run_recorded(10_000_000).unwrap();
            assert_eq!(t0, rec_cycles, "{kind:?}: recording run diverged");
            let set = TraceSet {
                cores: traces,
                pokes: vec![],
                workload: format!("{kind:?}"),
            };
            let mut rp = System::replay(cfg(n), &set);
            let t1 = rp.run(10_000_000).unwrap();
            assert_eq!(t0, t1, "{kind:?}: replay cycle count diverged");
            assert_eq!(exec.report(), rp.report(), "{kind:?}: reports diverged");
            for c in 0..n as u64 {
                assert_eq!(
                    exec.peek_word(0x4000 + c * 64),
                    rp.peek_word(0x4000 + c * 64),
                    "{kind:?}: memory diverged at core {c}'s slot"
                );
            }
            // Compressed spins must actually appear (the traces would be
            // huge otherwise) and replay must also hold with the
            // schedulers off.
            let compressed = set.cores.iter().any(|t| {
                t.ops.iter().any(|op| {
                    matches!(
                        op,
                        sim_trace::TraceOp::GlineSpin { .. } | sim_trace::TraceOp::MemSpin { .. }
                    )
                })
            });
            assert!(compressed, "{kind:?}: no spin was run-length compressed");
            let mut dense = System::replay(cfg(n), &set);
            dense.set_skip_enabled(false);
            dense.set_active_set_enabled(false);
            let t2 = dense.run(10_000_000).unwrap();
            assert_eq!(t0, t2, "{kind:?}: dense replay diverged");
            assert_eq!(
                exec.report(),
                dense.report(),
                "{kind:?}: dense replay report"
            );
        }
    }

    #[test]
    fn sched_stat_merges_are_associative_and_commutative() {
        let sk = |s: u64| SkipStats {
            attempts: s,
            skips: s.wrapping_mul(3) % 7,
            cycles_skipped: s * 11,
            fail_blocked: s % 2,
            fail_near: s % 5,
            backed_off: s * 2,
        };
        let cs = |s: u64| CoreSchedStats {
            ticks: s,
            core_steps: s * 13,
            parked_steps: s % 3,
            spin_parked_steps: s * 7 % 11,
        };
        for (a, b, c) in [(1u64, 2, 3), (0, 9, 4), (17, 0, 0), (5, 5, 5)] {
            // Commutative.
            let (mut ab, mut ba) = (sk(a), sk(b));
            ab += sk(b);
            ba += sk(a);
            assert_eq!(ab, ba);
            let (mut cab, mut cba) = (cs(a), cs(b));
            cab += cs(b);
            cba += cs(a);
            assert_eq!(cab, cba);
            // Associative.
            let mut left = sk(a);
            left += sk(b);
            left += sk(c);
            let mut bc = sk(b);
            bc += sk(c);
            let mut right = sk(a);
            right += bc;
            assert_eq!(left, right);
            let mut cleft = cs(a);
            cleft += cs(b);
            cleft += cs(c);
            let mut cbc = cs(b);
            cbc += cs(c);
            let mut cright = cs(a);
            cright += cbc;
            assert_eq!(cleft, cright);
            // Default is the identity.
            let mut id = sk(a);
            id += SkipStats::default();
            assert_eq!(id, sk(a));
            let mut cid = cs(a);
            cid += CoreSchedStats::default();
            assert_eq!(cid, cs(a));
        }
    }
}
