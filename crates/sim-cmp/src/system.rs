//! The assembled machine.

use crate::core::{Core, FfClass, SpinPlan};
use crate::par;
use crate::replay::{CoreProg, Pre, RecGline, RecMem, Recorder};
use crate::stats::SystemReport;
use gline_core::{BarrierHw, BarrierNetwork};
use sim_base::config::CmpConfig;
use sim_base::stats::TimeBreakdown;
use sim_base::trace::{NullSink, TraceSink, Tracer};
use sim_base::{CoreId, Cycle};
use sim_isa::Program;
use sim_mem::MemorySystem;
use sim_trace::{CoreTrace, TraceSet};

/// The full CMP: cores + memory hierarchy + NoC + G-line barrier
/// hardware. Generic over the barrier network flavour (flat by default;
/// also [`gline_core::TdmBarrierNetwork`] or
/// [`gline_core::ClusteredBarrierNetwork`]) and over the trace sink
/// (disabled by default; see [`sim_base::trace`]).
#[derive(Debug)]
pub struct System<B: BarrierHw = BarrierNetwork, S: TraceSink = NullSink> {
    cfg: CmpConfig,
    cores: Vec<Core>,
    progs: Vec<CoreProg>,
    mem: MemorySystem<S>,
    gline: B,
    tracer: Tracer<S>,
    now: Cycle,
    /// Quiescence-aware cycle skipping (see [`Self::set_skip_enabled`]).
    skip_enabled: bool,
    /// Per-core spin plans, reused across skip decisions (no per-cycle
    /// allocation on the hot path).
    ff_plans: Vec<Option<SpinPlan>>,
    /// Fast-forward effectiveness counters (diagnostics only; not part
    /// of [`SystemReport`], so skip-on and skip-off reports stay
    /// bit-identical).
    skip_stats: SkipStats,
    /// Active-set micro-scheduling (see
    /// [`Self::set_active_set_enabled`]).
    active_set_enabled: bool,
    /// Per-core park state: `Some((wake, anchor))` while the core's
    /// steps are pure stall charges. The span `[anchor, wake)` is
    /// charged lazily at wake-up; [`Self::report`] folds the pending
    /// part in so mid-run reports stay bit-identical.
    parked: Vec<Option<(Cycle, Cycle)>>,
    /// Per-core spin park state: `Some((plan, anchor))` while the core
    /// sits in a recognized memory-probing spin loop whose probed line
    /// provably cannot change (no protocol message is queued for its
    /// tile). The elided span `[anchor, now)` is replayed in closed
    /// form at wake-up — the cycle a message is about to reach the
    /// tile — and [`Self::report`] folds the pending part in purely.
    /// Disjoint from `parked` (a core is `Ready`/mid-spin here, stalled
    /// there).
    spin_parked: Vec<Option<(SpinPlan, Cycle)>>,
    /// Per-core miss park state: `Some(anchor)` while the core waits on
    /// a memory access whose response is still in flight (not yet
    /// scheduled by its L1). Every elided step is a pure breakdown
    /// charge; the wake trigger is the same delivery predicate as
    /// `spin_parked`'s, because only a message reaching the tile can
    /// install the response. Disjoint from both other park states.
    miss_parked: Vec<Option<Cycle>>,
    /// Current fast-forward failure backoff (0 = none): after a failed
    /// attempt, skip attempts are suppressed for this many cycles,
    /// doubling per consecutive failure up to [`MAX_FF_BACKOFF`].
    ff_backoff: u64,
    /// First cycle at which fast-forward attempts resume.
    ff_resume_at: Cycle,
    /// Core-scheduler occupancy counters (diagnostics only).
    sched: CoreSchedStats,
}

/// Cap on the fast-forward failure backoff. In coherence-bound phases
/// the machine is never quiescent, so attempts settle at one per
/// `MAX_FF_BACKOFF` cycles and the attempt overhead vanishes; in
/// bursty phases a successful skip resets the backoff to zero, and at
/// most this many skippable cycles are ticked densely before the next
/// attempt notices a quiescent span. The cap can sit this high because
/// densely ticked cycles are cheap once the cores park (§10): a
/// backed-off cycle with everything parked touches only the empty
/// active sets, so the transition latency it buys costs microseconds.
const MAX_FF_BACKOFF: u64 = 512;

/// How well the cycle-skipping scheduler is doing on a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Fast-forward attempts (one per `advance` with skipping live).
    pub attempts: u64,
    /// Attempts that jumped the clock.
    pub skips: u64,
    /// Total cycles elided across all jumps.
    pub cycles_skipped: u64,
    /// Attempts aborted because a core was actively executing.
    pub fail_blocked: u64,
    /// Attempts aborted because the earliest event was within a cycle.
    pub fail_near: u64,
    /// Cycles on which an attempt was suppressed by the failure
    /// backoff (the machine ticked densely instead).
    pub backed_off: u64,
}

/// Core-scheduler occupancy counters (diagnostics only; not part of
/// [`SystemReport`], so sparse and dense runs stay bit-identical).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreSchedStats {
    /// Ticks performed.
    pub ticks: u64,
    /// Core steps actually executed.
    pub core_steps: u64,
    /// Core steps elided because the core was parked on a stall (pure
    /// breakdown charges applied lazily at wake-up).
    pub parked_steps: u64,
    /// Core steps elided because the core was parked in a recognized
    /// memory-probing spin loop (replayed in closed form at wake-up).
    pub spin_parked_steps: u64,
}

impl CoreSchedStats {
    /// Mean number of cores stepped per tick.
    pub fn mean_active_cores(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.core_steps as f64 / self.ticks as f64
        }
    }
}

// Shard merges for the parallel engine: every field is an independent
// event count, so the merge is fieldwise addition — associative,
// commutative, with `default()` as identity (property-tested below).
impl std::ops::AddAssign for CoreSchedStats {
    fn add_assign(&mut self, o: CoreSchedStats) {
        self.ticks += o.ticks;
        self.core_steps += o.core_steps;
        self.parked_steps += o.parked_steps;
        self.spin_parked_steps += o.spin_parked_steps;
    }
}

impl std::ops::AddAssign for SkipStats {
    fn add_assign(&mut self, o: SkipStats) {
        self.attempts += o.attempts;
        self.skips += o.skips;
        self.cycles_skipped += o.cycles_skipped;
        self.fail_blocked += o.fail_blocked;
        self.fail_near += o.fail_near;
        self.backed_off += o.backed_off;
    }
}

impl<B: BarrierHw> System<B> {
    /// Builds the machine around explicit barrier hardware.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores() == hw.num_cores()`.
    pub fn with_barrier_hw(cfg: CmpConfig, progs: Vec<Program>, hw: B) -> System<B> {
        System::traced_with_barrier_hw(cfg, progs, hw, Tracer::default())
    }

    /// Builds a replay-mode machine around explicit barrier hardware:
    /// every core is driven by its recorded trace from `set`, and the
    /// initial memory image is `set.pokes`.
    ///
    /// # Panics
    /// Panics unless `set` holds one valid trace per core (see
    /// [`sim_trace::CoreTrace::validate`]) and the core counts agree.
    pub fn replay_with_barrier_hw(cfg: CmpConfig, set: &TraceSet, hw: B) -> System<B> {
        System::replay_traced_with_barrier_hw(cfg, set, hw, Tracer::default())
    }
}

impl<B: BarrierHw, S: TraceSink> System<B, S> {
    /// Builds the machine around explicit barrier hardware, with the
    /// cores, memory hierarchy and NoC all emitting into `tracer`. The
    /// barrier hardware traces only if it was itself built over the same
    /// sink (see [`gline_core::BarrierNetwork::traced`]).
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores() == hw.num_cores()`.
    pub fn traced_with_barrier_hw(
        cfg: CmpConfig,
        progs: Vec<Program>,
        hw: B,
        tracer: Tracer<S>,
    ) -> System<B, S> {
        System::assemble(
            cfg,
            progs.into_iter().map(CoreProg::Exec).collect(),
            hw,
            tracer,
        )
    }

    /// Replay-mode [`traced_with_barrier_hw`](Self::traced_with_barrier_hw).
    ///
    /// # Panics
    /// Panics unless `set` holds one valid trace per core and the core
    /// counts agree.
    pub fn replay_traced_with_barrier_hw(
        cfg: CmpConfig,
        set: &TraceSet,
        hw: B,
        tracer: Tracer<S>,
    ) -> System<B, S> {
        for t in &set.cores {
            t.validate()
                .unwrap_or_else(|e| panic!("core {}: invalid trace: {e}", t.core));
        }
        let progs = set.cores.iter().cloned().map(CoreProg::Replay).collect();
        let mut sys = System::assemble(cfg, progs, hw, tracer);
        for &(addr, value) in &set.pokes {
            sys.mem.poke_word(addr, value);
        }
        sys
    }

    fn assemble(cfg: CmpConfig, progs: Vec<CoreProg>, hw: B, tracer: Tracer<S>) -> System<B, S> {
        assert_eq!(progs.len(), cfg.num_cores(), "one program per core");
        assert_eq!(
            hw.num_cores(),
            cfg.num_cores(),
            "barrier hardware core count mismatch"
        );
        let mut cores: Vec<Core> = (0..cfg.num_cores())
            .map(|i| Core::new(CoreId::from(i), cfg.core.issue_width))
            .collect();
        for (core, prog) in cores.iter_mut().zip(&progs) {
            if let CoreProg::Replay(t) = prog {
                core.prime_replay(t);
            }
        }
        System {
            cfg,
            cores,
            progs,
            mem: MemorySystem::traced(&cfg, tracer.clone()),
            gline: hw,
            tracer,
            now: 0,
            skip_enabled: true,
            ff_plans: vec![None; cfg.num_cores()],
            skip_stats: SkipStats::default(),
            active_set_enabled: true,
            parked: vec![None; cfg.num_cores()],
            spin_parked: vec![None; cfg.num_cores()],
            miss_parked: vec![None; cfg.num_cores()],
            ff_backoff: 0,
            ff_resume_at: 0,
            sched: CoreSchedStats::default(),
        }
    }
}

impl System {
    /// Builds the machine with one program per core.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores()`.
    pub fn new(cfg: CmpConfig, progs: Vec<Program>) -> System {
        System::traced(cfg, progs, Tracer::default())
    }

    /// Convenience: every core runs the same program.
    pub fn homogeneous(cfg: CmpConfig, prog: Program) -> System {
        let progs = vec![prog; cfg.num_cores()];
        System::new(cfg, progs)
    }

    /// Builds a replay-mode machine: every core is driven by its
    /// recorded trace from `set` (see [`Self::run_recorded`]), and the
    /// initial memory image is `set.pokes`.
    ///
    /// # Panics
    /// Panics unless `set` holds one valid trace per core (see
    /// [`sim_trace::CoreTrace::validate`]) and the core counts agree.
    pub fn replay(cfg: CmpConfig, set: &TraceSet) -> System {
        System::replay_traced(cfg, set, Tracer::default())
    }

    /// Builds the machine with per-context barrier participation masks
    /// (see [`gline_core::BarrierNetwork::with_members`]); programs
    /// select contexts with the `barctx` instruction.
    pub fn with_barrier_masks(
        cfg: CmpConfig,
        progs: Vec<Program>,
        masks: Vec<Vec<bool>>,
    ) -> System {
        let hw = BarrierNetwork::with_members(cfg.mesh, cfg.gline, masks);
        System::with_barrier_hw(cfg, progs, hw)
    }
}

impl<S: TraceSink> System<BarrierNetwork<S>, S> {
    /// Builds the fully traced machine: every layer — cores, caches,
    /// directory, NoC and the G-line barrier network — emits into
    /// (clones of) `tracer`.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores()`.
    pub fn traced(
        cfg: CmpConfig,
        progs: Vec<Program>,
        tracer: Tracer<S>,
    ) -> System<BarrierNetwork<S>, S> {
        let hw = BarrierNetwork::traced(cfg.mesh, cfg.gline, tracer.clone());
        System::traced_with_barrier_hw(cfg, progs, hw, tracer)
    }

    /// Replay-mode [`traced`](Self::traced): every layer emits into
    /// `tracer` while the cores are driven by recorded traces.
    ///
    /// # Panics
    /// Panics unless `set` holds one valid trace per core and the core
    /// counts agree.
    pub fn replay_traced(
        cfg: CmpConfig,
        set: &TraceSet,
        tracer: Tracer<S>,
    ) -> System<BarrierNetwork<S>, S> {
        let hw = BarrierNetwork::traced(cfg.mesh, cfg.gline, tracer.clone());
        System::replay_traced_with_barrier_hw(cfg, set, hw, tracer)
    }
}

impl<B: BarrierHw, S: TraceSink> System<B, S> {
    /// The tracer shared by the machine's components.
    pub fn tracer(&self) -> &Tracer<S> {
        &self.tracer
    }

    /// The configuration in use.
    pub fn config(&self) -> &CmpConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Pre-loads a data word (before any core touches its line).
    pub fn poke_word(&mut self, addr: u64, value: u64) {
        self.mem.poke_word(addr, value);
    }

    /// Architectural value of a data word, wherever its current copy is.
    pub fn peek_word(&self, addr: u64) -> u64 {
        self.mem.peek_word(addr)
    }

    /// Access to a core (registers, breakdown, …).
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// True when every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(Core::halted)
    }

    /// Advances the whole machine one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        self.sched.ticks += 1;
        if self.active_set_enabled {
            for i in 0..self.cores.len() {
                if let Some((wake, _)) = self.parked[i] {
                    if now < wake {
                        self.sched.parked_steps += 1;
                        continue;
                    }
                    let (_, anchor) = self.parked[i].take().expect("checked above");
                    self.cores[i].ff_stall(now - anchor);
                }
                if let Some((plan, anchor)) = self.spin_parked[i] {
                    // The probed line can only change when a protocol
                    // message reaches this tile, and deliveries for this
                    // cycle were queued by the previous cycle's NoC tick
                    // — so the check is exact and runs one cycle ahead
                    // of the mutation.
                    if !self.mem.has_delivery_for(CoreId::from(i)) {
                        self.sched.spin_parked_steps += 1;
                        continue;
                    }
                    // A message lands this cycle (during `mem.tick`,
                    // after the cores step, exactly as it would have in
                    // a dense run): replay the elided span against the
                    // still-frozen line, then step this cycle live.
                    self.spin_parked[i] = None;
                    self.cores[i].ff_replay(plan, now, anchor, &mut self.mem);
                }
                if let Some(anchor) = self.miss_parked[i] {
                    if !self.mem.has_delivery_for(CoreId::from(i)) {
                        self.sched.parked_steps += 1;
                        continue;
                    }
                    // The inbound message may carry (or unblock) the
                    // response; settle the elided charge-only span and
                    // step live from here on.
                    self.miss_parked[i] = None;
                    self.cores[i].ff_stall(now - anchor);
                }
                let core = &mut self.cores[i];
                if core.halted() {
                    continue;
                }
                // Park a core whose miss is still in flight: its L1
                // cannot schedule the response (and the core cannot do
                // anything but charge its stall category) until a
                // protocol message reaches this tile.
                if core.waiting_on_unscheduled_resp(&self.mem)
                    && !self.mem.has_delivery_for(CoreId::from(i))
                {
                    debug_assert!(self.parked[i].is_none() && self.spin_parked[i].is_none());
                    self.miss_parked[i] = Some(now);
                    self.sched.parked_steps += 1;
                    continue;
                }
                // Park instead of stepping when the core sits at a
                // recognized memory-probing spin and no message is
                // inbound: every elided step is a closed-form replay at
                // wake-up. G-line spins are left to the whole-machine
                // skip — `bar_reg` changes without L1 traffic, so they
                // have no per-core wake trigger (which is why the park
                // decision uses the memory-only matcher instead of the
                // full classifier: a G-line plan would be discarded
                // here, so computing it per tick is pure overhead).
                if !S::ENABLED && !self.mem.has_delivery_for(CoreId::from(i)) {
                    if let Some(plan) = core.park_spin(&self.progs[i], &self.mem, now) {
                        debug_assert!(self.parked[i].is_none());
                        self.spin_parked[i] = Some((plan, now));
                        self.sched.spin_parked_steps += 1;
                        continue;
                    }
                }
                self.sched.core_steps += 1;
                core.step(
                    &self.progs[i],
                    &mut self.mem,
                    &mut self.gline,
                    now,
                    &self.tracer,
                );
                // Park the core if its next state change is provably
                // more than one cycle out; its skipped steps are pure
                // stall charges, applied at wake-up.
                if let Some(wake) = core.park_until(&self.mem) {
                    if wake > now + 1 {
                        self.parked[i] = Some((wake, now + 1));
                    }
                }
            }
        } else {
            for (core, prog) in self.cores.iter_mut().zip(&self.progs) {
                if !core.halted() {
                    self.sched.core_steps += 1;
                }
                core.step(prog, &mut self.mem, &mut self.gline, now, &self.tracer);
            }
        }
        self.mem.tick();
        self.gline.tick();
        self.now += 1;
    }

    /// Charges every parked core's pending stall span and unparks it.
    /// Called before a whole-machine fast-forward (whose closed-form
    /// replay charges from `now` onward) and when active-set scheduling
    /// is turned off mid-run.
    fn flush_parks(&mut self) {
        for i in 0..self.cores.len() {
            if let Some((_, anchor)) = self.parked[i].take() {
                self.cores[i].ff_stall(self.now - anchor);
            }
            if let Some(anchor) = self.miss_parked[i].take() {
                self.cores[i].ff_stall(self.now - anchor);
            }
        }
    }

    /// Replays every spin-parked core's elided span up to `now` and
    /// unparks it. Legal between ticks: every elided cycle provably saw
    /// the frozen probed line (a pending delivery unparks the core
    /// before the line can change), so the closed-form replay is exact.
    /// Called when active-set scheduling is turned off mid-run (the
    /// dense loop steps every core). Whole-machine fast-forward does
    /// NOT flush: it replays each spin-parked core from its own anchor
    /// straight to the jump target, so failed attempts never disturb
    /// the parks.
    fn flush_spin_parks(&mut self) {
        for i in 0..self.cores.len() {
            if let Some((plan, anchor)) = self.spin_parked[i].take() {
                self.cores[i].ff_replay(plan, self.now, anchor, &mut self.mem);
            }
        }
    }

    /// Enables or disables quiescence-aware cycle skipping (on by
    /// default). When every core is provably parked — stalled on the
    /// memory hierarchy, inside a `busy` block, or spinning in a
    /// recognized wait loop — [`run`](Self::run) jumps the clock to the
    /// next event instead of ticking cycle by cycle, replaying the
    /// skipped span's statistics in closed form. Reports are
    /// bit-identical either way; disabling is an escape hatch for
    /// debugging (`--no-skip` in the CLI). Traced systems always take
    /// the cycle-exact path regardless of this flag, so event streams
    /// are never elided.
    pub fn set_skip_enabled(&mut self, on: bool) {
        self.skip_enabled = on;
    }

    /// Whether quiescence-aware cycle skipping is enabled.
    pub fn skip_enabled(&self) -> bool {
        self.skip_enabled
    }

    /// Fast-forward effectiveness counters for this run so far.
    pub fn skip_stats(&self) -> SkipStats {
        self.skip_stats
    }

    /// Enables or disables active-set micro-scheduling across the whole
    /// machine — core parking here, busy-bank work lists in the memory
    /// hierarchy, router/injection/delivery work lists in the NoC (on
    /// by default). A component outside its subsystem's active set
    /// provably cannot transition this cycle, so reports, architectural
    /// memory and event traces are bit-identical either way; disabling
    /// is an escape hatch for debugging (`--no-active-set` in the CLI)
    /// and the reference path for `tests/active_set_determinism.rs`.
    pub fn set_active_set_enabled(&mut self, on: bool) {
        if !on {
            // The dense loop steps every core; settle pending park
            // charges and spin replays first.
            self.flush_parks();
            self.flush_spin_parks();
        }
        self.active_set_enabled = on;
        self.mem.set_active_set_enabled(on);
    }

    /// Whether active-set micro-scheduling is enabled.
    pub fn active_set_enabled(&self) -> bool {
        self.active_set_enabled
    }

    /// Core-scheduler occupancy counters for this run so far.
    pub fn core_sched_stats(&self) -> CoreSchedStats {
        self.sched
    }

    /// Memory-hierarchy occupancy counters for this run so far.
    pub fn mem_sched_stats(&self) -> sim_mem::MemSchedStats {
        self.mem.sched_stats()
    }

    /// NoC occupancy counters for this run so far.
    pub fn noc_sched_stats(&self) -> sim_noc::NocSchedStats {
        self.mem.noc_sched_stats()
    }

    /// Advances one cycle — or, if skipping is permitted and the whole
    /// machine is quiescent, jumps to the next event (clamped to
    /// `horizon`, which callers use for deadline and progress-boundary
    /// alignment). Failed skip attempts are throttled with an
    /// exponential backoff so coherence-bound phases do not pay the
    /// attempt cost every cycle.
    fn advance(&mut self, horizon: Cycle) {
        if S::ENABLED || !self.skip_enabled || horizon <= self.now + 1 {
            self.tick();
            return;
        }
        if self.now < self.ff_resume_at {
            self.skip_stats.backed_off += 1;
            self.tick();
            return;
        }
        if self.try_fast_forward(horizon) {
            self.ff_backoff = 0;
        } else {
            self.ff_backoff = (self.ff_backoff * 2).clamp(1, MAX_FF_BACKOFF);
            self.ff_resume_at = self.now + self.ff_backoff;
            self.tick();
        }
    }

    /// Attempts a fast-forward jump. Returns `false` (machine untouched)
    /// when any component may change state within the next cycle; on
    /// `true` the clock has jumped to the earliest next event and every
    /// component has been advanced in closed form.
    fn try_fast_forward(&mut self, horizon: Cycle) -> bool {
        let mut target = horizon;
        if target <= self.now + 1 {
            return false;
        }
        self.skip_stats.attempts += 1;
        // Clamp on the component clocks first: while protocol traffic is
        // in flight the hierarchy reports an event within a cycle or two,
        // and bailing here skips the per-core classification entirely —
        // the common case on coherence-bound phases.
        if let Some(t) = self.mem.next_event() {
            target = target.min(t);
        }
        if let Some(t) = self.gline.next_event() {
            target = target.min(t);
        }
        if target <= self.now + 1 {
            self.skip_stats.fail_near += 1;
            return false;
        }
        for (i, core) in self.cores.iter().enumerate() {
            self.ff_plans[i] = None;
            if let Some((plan, anchor)) = &self.spin_parked[i] {
                // Already a recognized spin, frozen since its anchor:
                // no delivery has reached its tile (the park's wake
                // trigger), and none will before `target` (the clamp on
                // `mem.next_event` above). Replayed from its own anchor
                // on success; a replay-mode plan additionally bounds the
                // jump by its recorded iteration budget.
                if let Some(t) = plan.max_target(*anchor) {
                    target = target.min(t);
                }
                continue;
            }
            match core.ff_classify(&self.progs[i], &self.mem, &self.gline, self.now) {
                FfClass::Blocked => {
                    self.skip_stats.fail_blocked += 1;
                    return false;
                }
                FfClass::NoConstraint => {}
                FfClass::WakeAt(t) => target = target.min(t),
                FfClass::Spin(plan) => {
                    // A replay-mode spin cannot be skipped past its
                    // recorded iteration budget: clamp the jump so the
                    // closed-form replay never overruns the op (for
                    // genuine recordings an external wake always lands
                    // first, so the clamp is a hand-built-trace guard).
                    if let Some(t) = plan.max_target(self.now) {
                        target = target.min(t);
                    }
                    self.ff_plans[i] = Some(plan);
                }
            }
        }
        if target <= self.now + 1 {
            self.skip_stats.fail_near += 1;
            return false;
        }
        let k = target - self.now;
        self.skip_stats.skips += 1;
        self.skip_stats.cycles_skipped += k;
        // Parked spans are charged lazily; settle stall and miss parks
        // up to `now` before the closed-form replay charges
        // `now..target`. Spin parks replay their whole `[anchor,
        // target)` span in one step instead.
        self.flush_parks();
        for i in 0..self.cores.len() {
            if let Some((plan, anchor)) = self.spin_parked[i].take() {
                self.cores[i].ff_replay(plan, target, anchor, &mut self.mem);
            } else if let Some(plan) = self.ff_plans[i] {
                self.cores[i].ff_replay(plan, target, self.now, &mut self.mem);
            } else if !self.cores[i].halted() {
                self.cores[i].ff_stall(k);
            }
        }
        self.mem.skip_to(target);
        self.gline.skip_to(target);
        self.now = target;
        true
    }

    /// Runs until every core halts. Returns the cycle count.
    ///
    /// # Errors
    /// Returns an error naming the stuck cores if `max_cycles` elapses
    /// first (deadlock / livelock guard).
    pub fn run(&mut self, max_cycles: u64) -> Result<Cycle, String> {
        let start = self.now;
        while !self.all_halted() {
            self.advance(start + max_cycles + 1);
            if self.now - start > max_cycles {
                let stuck: Vec<String> = self
                    .cores
                    .iter()
                    .filter(|c| !c.halted())
                    .map(|c| format!("{:?}", c.id()))
                    .collect();
                return Err(format!(
                    "system did not halt within {max_cycles} cycles; still running: {}",
                    stuck.join(", ")
                ));
            }
        }
        Ok(self.now - start)
    }

    /// Like [`run`](Self::run), but invokes `observer` with a fresh
    /// [`SystemReport`] every `every` cycles — progress reporting for
    /// long simulations (the report is cumulative, not a delta).
    ///
    /// # Errors
    /// Same deadlock guard as [`run`](Self::run).
    pub fn run_with_progress(
        &mut self,
        max_cycles: u64,
        every: u64,
        mut observer: impl FnMut(&SystemReport),
    ) -> Result<Cycle, String> {
        assert!(every > 0);
        let start = self.now;
        let mut next = self.now + every;
        while !self.all_halted() {
            // Clamp skips to the observer boundary so the observer fires
            // at every `every`-cycle mark with the report as of exactly
            // that cycle, even when a jump would have crossed it.
            self.advance(next.min(start + max_cycles + 1));
            if self.now >= next {
                observer(&self.report());
                next += every;
            }
            if self.now - start > max_cycles {
                return Err(format!(
                    "system did not halt within {max_cycles} cycles; still running: {}",
                    self.cores
                        .iter()
                        .filter(|c| !c.halted())
                        .map(|c| format!("{:?}", c.id()))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(self.now - start)
    }

    /// Like [`run`](Self::run), but records every core's executed issue
    /// groups into a [`CoreTrace`] stream as it goes, returning the
    /// cycle count and one trace per core. The run is cycle-exact and
    /// dense (no skipping, no parking): the recorder must observe every
    /// executing cycle, and elided spans would hide them. A machine
    /// replaying those traces (see [`System::replay`]) reproduces this
    /// run's [`SystemReport`], architectural memory and event stream
    /// bit-identically.
    ///
    /// # Errors
    /// Same deadlock guard as [`run`](Self::run).
    ///
    /// # Panics
    /// Panics if the machine has already advanced (`now() != 0`) or if
    /// any core is itself replay-driven.
    pub fn run_recorded(&mut self, max_cycles: u64) -> Result<(Cycle, Vec<CoreTrace>), String> {
        assert_eq!(self.now, 0, "recording must start from a fresh machine");
        let mut rec = Recorder::new(self.cores.len());
        let mut writes: Vec<(u8, u64)> = Vec::new();
        while !self.all_halted() {
            let now = self.now;
            self.sched.ticks += 1;
            for i in 0..self.cores.len() {
                let CoreProg::Exec(prog) = &self.progs[i] else {
                    panic!("cannot re-record a replay-mode system");
                };
                let core = &mut self.cores[i];
                if !core.halted() {
                    self.sched.core_steps += 1;
                }
                let pre = Pre {
                    pc: core.pc() as u32,
                    retired: core.retired(),
                    region: core.cur_region(),
                    halted: core.halted(),
                };
                let mut rmem = RecMem::new(&mut self.mem);
                {
                    let mut rgl = RecGline::new(&mut self.gline, &mut writes);
                    core.step(&self.progs[i], &mut rmem, &mut rgl, now, &self.tracer);
                }
                rec.record_step(i, prog, pre, core, &rmem, &mut writes, now);
            }
            self.mem.tick();
            self.gline.tick();
            self.now += 1;
            if self.now > max_cycles {
                let stuck: Vec<String> = self
                    .cores
                    .iter()
                    .filter(|c| !c.halted())
                    .map(|c| format!("{:?}", c.id()))
                    .collect();
                return Err(format!(
                    "system did not halt within {max_cycles} cycles; still running: {}",
                    stuck.join(", ")
                ));
            }
        }
        Ok((self.now, rec.finish()))
    }

    /// Like [`run`](Self::run), but advances each cycle with `workers`
    /// shard threads — the sharded-tick parallel engine (`DESIGN.md`
    /// §11). Results are **bit-identical** to [`run`](Self::run): same
    /// [`SystemReport`], same architectural memory, same scheduler and
    /// skip statistics (`tests/parallel_determinism.rs`).
    ///
    /// `workers` is clamped to `1..=num_cores`; a clamped value of 1 —
    /// or a traced system, whose event stream is defined by the serial
    /// interleaving — falls back to the serial engine.
    ///
    /// # Errors
    /// Same deadlock guard as [`run`](Self::run).
    pub fn run_with_workers(&mut self, max_cycles: u64, workers: usize) -> Result<Cycle, String> {
        let start = self.now;
        self.advance_until_with_workers(start + max_cycles + 1, workers);
        if self.now - start > max_cycles {
            let stuck: Vec<String> = self
                .cores
                .iter()
                .filter(|c| !c.halted())
                .map(|c| format!("{:?}", c.id()))
                .collect();
            Err(format!(
                "system did not halt within {max_cycles} cycles; still running: {}",
                stuck.join(", ")
            ))
        } else {
            Ok(self.now - start)
        }
    }

    /// Advances the machine with `workers` shard threads until every
    /// core halts or the clock reaches `until` (whichever comes first;
    /// skips clamp to `until` exactly like [`run`](Self::run)'s
    /// deadline horizon). The worker pool lives only for this call, so
    /// the worker count may differ from one call to the next — the
    /// machine state cannot tell the difference.
    pub fn advance_until_with_workers(&mut self, until: Cycle, workers: usize) {
        let n = self.cores.len();
        let w = sim_base::shard::clamp_workers(workers, n);
        if S::ENABLED || w <= 1 {
            while !self.all_halted() && self.now < until {
                self.advance(until);
            }
            return;
        }
        let shards = sim_base::shard::shard_ranges(n, w);
        let mut flags: Vec<bool> = Vec::with_capacity(n);
        self.mem.delivery_flags(&mut flags);
        let init = self.cycle_ptrs(&flags);
        let ctx = par::CycleCtx::new(shards, init);
        let mut sense = false;
        std::thread::scope(|scope| {
            for wk in 1..w {
                let ctx = &ctx;
                scope.spawn(move || par::worker_loop(ctx, wk));
            }
            while !self.all_halted() && self.now < until {
                self.advance_parallel(&ctx, &mut sense, &mut flags, until);
            }
            ctx.stop.store(true, std::sync::atomic::Ordering::Release);
            // Wake the workers one last time so they observe the stop
            // flag (the release-barrier wait is the wake edge).
            ctx.barrier.wait(&mut sense);
        });
    }

    /// [`advance`](Self::advance) with the dense tick replaced by a
    /// sharded parallel tick. The skip path is untouched: quiescence
    /// probing and closed-form replay run on the coordinator while the
    /// workers sit parked at the release barrier — parking *is* the
    /// AND-reduction of the per-shard quiescence votes, because a
    /// parked worker has published all its state to the coordinator.
    fn advance_parallel(
        &mut self,
        ctx: &par::CycleCtx<B, S>,
        sense: &mut bool,
        flags: &mut Vec<bool>,
        horizon: Cycle,
    ) {
        if S::ENABLED || !self.skip_enabled || horizon <= self.now + 1 {
            self.tick_parallel(ctx, sense, flags);
            return;
        }
        if self.now < self.ff_resume_at {
            self.skip_stats.backed_off += 1;
            self.tick_parallel(ctx, sense, flags);
            return;
        }
        if self.try_fast_forward(horizon) {
            self.ff_backoff = 0;
        } else {
            self.ff_backoff = (self.ff_backoff * 2).clamp(1, MAX_FF_BACKOFF);
            self.ff_resume_at = self.now + self.ff_backoff;
            self.tick_parallel(ctx, sense, flags);
        }
    }

    /// One sharded-tick cycle: freeze the delivery flags, publish the
    /// cycle's pointer snapshot, run the compute phase (this thread
    /// doubles as worker 0), then serialize the exchange — latched
    /// barrier arrivals in ascending core order, outbox flushes in
    /// ascending tile order, shared component ticks — exactly the
    /// serial [`tick`](Self::tick)'s effect order.
    fn tick_parallel(
        &mut self,
        ctx: &par::CycleCtx<B, S>,
        sense: &mut bool,
        flags: &mut Vec<bool>,
    ) {
        self.sched.ticks += 1;
        self.mem.delivery_flags(flags);
        // SAFETY: every worker is parked at the release barrier, so the
        // snapshot write is exclusive; the raw pointers are re-derived
        // here and die at the join barrier below.
        unsafe {
            *ctx.ptrs.get() = self.cycle_ptrs(flags);
        }
        ctx.barrier.wait(sense); // release: compute phase begins
        let (lo, hi) = ctx.shards[0];
        // SAFETY: shard 0 is this thread's; between the barriers `self`
        // is only touched through the snapshot, like any other worker.
        unsafe {
            par::shard_phase(&*ctx.ptrs.get(), lo, hi, &mut *ctx.outs[0].get());
        }
        ctx.barrier.wait(sense); // join: all shard effects are visible
        for out in &ctx.outs {
            // SAFETY: workers are parked again; the outs are ours.
            let out = unsafe { &mut *out.get() };
            for (core, bctx, v) in out.latch.drain(..) {
                self.gline.write_bar_reg(core, bctx, v);
            }
            self.sched += out.sched;
            out.sched = CoreSchedStats::default();
        }
        self.mem.flush_shard_outboxes();
        self.mem.tick();
        self.gline.tick();
        self.now += 1;
    }

    /// The per-cycle pointer snapshot handed to the workers.
    fn cycle_ptrs(&mut self, flags: &[bool]) -> par::Ptrs<B, S> {
        par::Ptrs {
            cores: self.cores.as_mut_ptr(),
            progs: self.progs.as_ptr(),
            parked: self.parked.as_mut_ptr(),
            spin_parked: self.spin_parked.as_mut_ptr(),
            miss_parked: self.miss_parked.as_mut_ptr(),
            lanes: self.mem.tile_lanes(),
            flags: flags.as_ptr(),
            gline: &self.gline,
            tracer: &self.tracer,
            now: self.now,
            active_set: self.active_set_enabled,
        }
    }

    /// Gathers the run's statistics.
    pub fn report(&self) -> SystemReport {
        let mut per_core: Vec<TimeBreakdown> = self.cores.iter().map(Core::breakdown).collect();
        // Parked cores' stall spans are charged lazily at wake-up; fold
        // the pending `[anchor, now)` span in so a mid-run report is
        // bit-identical to the dense path's (the charged category is
        // frozen while parked).
        for (i, p) in self.parked.iter().enumerate() {
            if let Some((_, anchor)) = *p {
                per_core[i].add(self.cores[i].category(), self.now - anchor);
            }
        }
        for (i, p) in self.miss_parked.iter().enumerate() {
            if let Some(anchor) = *p {
                per_core[i].add(self.cores[i].category(), self.now - anchor);
            }
        }
        // Same for spin-parked cores, whose pending spans also carry
        // retires and L1 hits; `spin_pending_stats` previews exactly
        // what the eventual replay will charge.
        let mut pending_retired = 0;
        let mut pending_l1_hits = 0;
        for (i, p) in self.spin_parked.iter().enumerate() {
            if let Some((plan, anchor)) = p {
                let (cat_a, a, cat_b, b, retired, hits) =
                    self.cores[i].spin_pending_stats(plan, self.now - anchor);
                per_core[i].add(cat_a, a);
                per_core[i].add(cat_b, b);
                pending_retired += retired;
                pending_l1_hits += hits;
            }
        }
        let mut total_time = TimeBreakdown::new();
        for b in &per_core {
            total_time += *b;
        }
        let noc = self.mem.noc_stats();
        let gl = self.gline.stats(0);
        let mut l1_hits = 0;
        let mut l1_misses = 0;
        for i in 0..self.cores.len() {
            let s = self.mem.l1_stats(CoreId::from(i));
            l1_hits += s.hits;
            l1_misses += s.misses;
        }
        let home = self.mem.home_stats();
        SystemReport {
            cycles: self.now,
            per_core,
            total_time,
            traffic: noc.sent,
            flit_hops: noc.flit_hops,
            gl_barriers: gl.barriers_completed,
            gl_mean_latency: gl.mean_latency(),
            gl_signals: gl.signals,
            instructions: self.cores.iter().map(Core::retired).sum::<u64>() + pending_retired,
            l1_hits: l1_hits + pending_l1_hits,
            l1_misses,
            l2_hits: home.l2_hits,
            l2_misses: home.l2_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{emit_lock, emit_unlock, BarrierEnv, BarrierKind};
    use sim_base::stats::TimeCat;
    use sim_isa::interp::RefCmp;
    use sim_isa::{assemble, ProgBuilder, Reg};

    fn cfg(n: usize) -> CmpConfig {
        CmpConfig::icpp2010_with_cores(n)
    }

    #[test]
    fn single_core_computation_matches_reference() {
        let src = "
            li r1, 0x800      # base
            li r2, 20         # n
            li r3, 0          # i
            li r4, 0          # acc
        loop:
            mul r5, r3, r3
            st r5, 0(r1)
            ld r6, 0(r1)
            add r4, r4, r6
            addi r1, r1, 64
            addi r3, r3, 1
            bne r3, r2, loop
            st r4, 0(r1)
            halt
        ";
        let prog = assemble(src).unwrap();
        // Reference result.
        let mut rc = RefCmp::new(1, 4096);
        rc.run(&[&prog], 1_000_000).unwrap();
        // Cycle-accurate result.
        let mut sys = System::homogeneous(cfg(1), prog);
        sys.run(1_000_000).unwrap();
        let final_addr = 0x800 + 20 * 64;
        assert_eq!(sys.peek_word(final_addr), rc.word(final_addr));
        assert_eq!(
            sys.peek_word(final_addr),
            (0..20u64).map(|i| i * i).sum::<u64>()
        );
    }

    #[test]
    fn four_cores_gl_barrier_round() {
        // Each core stores its id, hits the GL barrier, then sums all
        // stored ids — the barrier must make every store visible.
        let n = 4;
        let env = BarrierEnv::new(BarrierKind::Gl, n, 4096);
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                b.li(Reg(1), c as i64 + 1)
                    .li(Reg(2), (0x1000 + c * 64) as i64)
                    .st(Reg(1), 0, Reg(2));
                env.emit(&mut b, c, "x");
                b.li(Reg(4), 0);
                for p in 0..n {
                    b.li(Reg(2), (0x1000 + p * 64) as i64)
                        .ld(Reg(3), 0, Reg(2))
                        .add(Reg(4), Reg(4), Reg(3));
                }
                b.li(Reg(2), (0x2000 + c * 64) as i64)
                    .st(Reg(4), 0, Reg(2))
                    .halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(1_000_000).unwrap();
        for c in 0..n {
            assert_eq!(
                sys.peek_word(0x2000 + c as u64 * 64),
                10,
                "core {c} missed a store"
            );
        }
        let rep = sys.report();
        assert_eq!(rep.gl_barriers, 1);
        assert!(
            (rep.gl_mean_latency - 4.0).abs() < 1e-9,
            "{}",
            rep.gl_mean_latency
        );
        assert!(rep.total_time[TimeCat::Barrier] > 0);
    }

    /// All three barrier kinds agree architecturally with the reference
    /// machine on a multi-barrier producer/consumer pattern.
    fn barrier_agreement(kind: BarrierKind, n: usize, iters: usize) {
        let env = BarrierEnv::new(kind, n, 4096);
        let slot = |c: usize| 0x4000 + c as u64 * 64;
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                // r10 = running checksum of neighbour values.
                for it in 0..iters {
                    // Phase 1: write it+1 to my slot.
                    b.li(Reg(1), it as i64 + 1)
                        .li(Reg(2), slot(c) as i64)
                        .st(Reg(1), 0, Reg(2));
                    env.emit(&mut b, c, &format!("a{it}"));
                    // Phase 2: read my right neighbour's slot; it must be
                    // exactly it+1.
                    let nb = (c + 1) % n;
                    b.li(Reg(2), slot(nb) as i64).ld(Reg(3), 0, Reg(2)).add(
                        Reg(10),
                        Reg(10),
                        Reg(3),
                    );
                    env.emit(&mut b, c, &format!("b{it}"));
                }
                b.li(Reg(2), (0x8000 + c * 64) as i64)
                    .st(Reg(10), 0, Reg(2))
                    .halt();
                b.build()
            })
            .collect();
        let expected: u64 = (1..=iters as u64).sum();
        let mut sys = System::new(cfg(n), progs);
        sys.run(20_000_000).unwrap();
        for c in 0..n {
            assert_eq!(
                sys.peek_word(0x8000 + c as u64 * 64),
                expected,
                "{kind:?} n={n} core {c}: barrier failed to order the phases"
            );
        }
    }

    #[test]
    fn gl_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Gl, 8, 4);
    }

    #[test]
    fn csw_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Csw, 8, 4);
    }

    #[test]
    fn dsw_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Dsw, 8, 4);
    }

    #[test]
    fn dsw_barrier_odd_core_count() {
        barrier_agreement(BarrierKind::Dsw, 6, 3);
    }

    #[test]
    fn locks_are_mutually_exclusive_under_real_timing() {
        let n = 4;
        let lock = 4096u64;
        let counter = 8192u64;
        let per_core = 10;
        let progs: Vec<Program> = (0..n)
            .map(|_| {
                let mut b = ProgBuilder::new();
                b.li(Reg(10), per_core);
                b.label("loop");
                emit_lock(&mut b, lock, "l");
                b.li(Reg(3), counter as i64)
                    .ld(Reg(4), 0, Reg(3))
                    .addi(Reg(4), Reg(4), 1)
                    .st(Reg(4), 0, Reg(3));
                emit_unlock(&mut b, lock);
                b.addi(Reg(10), Reg(10), -1)
                    .bne(Reg(10), Reg::ZERO, "loop")
                    .halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(10_000_000).unwrap();
        assert_eq!(sys.peek_word(counter), n as u64 * per_core as u64);
        let rep = sys.report();
        assert!(
            rep.total_time[TimeCat::Lock] > 0,
            "lock time must be attributed"
        );
    }

    #[test]
    fn gl_beats_software_barriers_in_cycles() {
        // The headline claim, miniaturized: a pure barrier loop completes
        // fastest with GL, and DSW beats CSW at 16 cores.
        let n = 16;
        let iters = 10;
        let mut cycles = Vec::new();
        for kind in BarrierKind::ALL {
            let env = BarrierEnv::new(kind, n, 4096);
            let progs: Vec<Program> = (0..n)
                .map(|c| {
                    let mut b = ProgBuilder::new();
                    for it in 0..iters {
                        env.emit(&mut b, c, &format!("i{it}"));
                    }
                    b.halt();
                    b.build()
                })
                .collect();
            let mut sys = System::new(cfg(n), progs);
            let t = sys.run(50_000_000).unwrap();
            cycles.push((kind, t));
        }
        let gl = cycles[0].1;
        let csw = cycles[1].1;
        let dsw = cycles[2].1;
        assert!(
            gl < dsw && dsw < csw,
            "expected GL < DSW < CSW, got {cycles:?}"
        );
        assert!(
            gl * 5 < csw,
            "GL should dominate CSW by a wide margin: {cycles:?}"
        );
    }

    #[test]
    fn gl_barrier_generates_no_network_traffic() {
        let n = 8;
        let env = BarrierEnv::new(BarrierKind::Gl, n, 4096);
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                for it in 0..5 {
                    env.emit(&mut b, c, &format!("i{it}"));
                }
                b.halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(1_000_000).unwrap();
        let rep = sys.report();
        assert_eq!(
            rep.traffic.total(),
            0,
            "the GL barrier must not touch the NoC"
        );
        assert_eq!(rep.gl_barriers, 5);
        assert!(rep.gl_signals > 0);
    }

    #[test]
    fn group_barriers_via_contexts() {
        // Two independent 4-core groups on an 8-core machine, each
        // synchronizing through its own barrier context: group 0 runs
        // many short episodes while group 1 runs few long ones — neither
        // may block the other.
        let n = 8;
        let mut c = cfg(n);
        c.gline.contexts = 2;
        let progs: Vec<Program> = (0..n)
            .map(|core| {
                let group = core / 4;
                let mut b = ProgBuilder::new();
                b.barctx(group as u8);
                let (episodes, work) = if group == 0 { (20, 5) } else { (2, 400) };
                for ep in 0..episodes {
                    b.busy(work);
                    // Arrive and spin, group-local.
                    let lbl = format!("w{ep}");
                    b.li(Reg(1), 1).barw(Reg(1)).label(&lbl).barr(Reg(2)).bne(
                        Reg(2),
                        Reg::ZERO,
                        &lbl,
                    );
                }
                b.halt();
                b.build()
            })
            .collect();
        let masks: Vec<Vec<bool>> = vec![
            (0..n).map(|i| i < 4).collect(),
            (0..n).map(|i| i >= 4).collect(),
        ];
        let mut sys = System::with_barrier_masks(c, progs, masks);
        sys.run(1_000_000).unwrap();
        // 20 episodes in ctx 0 (by 4 cores) + 2 in ctx 1: the gl_barriers
        // counter counts per-core arrivals-episodes entered.
        assert_eq!(sys.core(CoreId(0)).gl_barriers(), 20);
        assert_eq!(sys.core(CoreId(7)).gl_barriers(), 2);
    }

    #[test]
    #[should_panic(expected = "barctx")]
    fn out_of_range_barctx_panics() {
        let prog = sim_isa::assemble(
            "barctx 3
halt",
        )
        .unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let _ = sys.run(100);
    }

    #[test]
    fn system_runs_on_tdm_barrier_hardware() {
        use gline_core::TdmBarrierNetwork;
        // The same 5-episode barrier loop on flat vs TDM hardware (four
        // logical barriers sharing one wire set; the program uses slot 0):
        // TDM must be correct and strictly slower.
        let n = 8;
        let barrier_loop = || -> Vec<Program> {
            (0..n)
                .map(|_| {
                    let mut b = ProgBuilder::new();
                    for ep in 0..5 {
                        let lbl = format!("w{ep}");
                        b.li(Reg(1), 1).barw(Reg(1)).label(&lbl).barr(Reg(2)).bne(
                            Reg(2),
                            Reg::ZERO,
                            &lbl,
                        );
                    }
                    b.halt();
                    b.build()
                })
                .collect()
        };
        let c = cfg(n);
        let hw = TdmBarrierNetwork::new(c.mesh, c.gline, 4);
        let mut tdm = System::with_barrier_hw(c, barrier_loop(), hw);
        let tdm_cycles = tdm.run(1_000_000).unwrap();
        let mut flat = System::new(cfg(n), barrier_loop());
        let flat_cycles = flat.run(1_000_000).unwrap();
        assert!(
            tdm_cycles > flat_cycles,
            "TDM slots must cost latency: {tdm_cycles} vs {flat_cycles}"
        );
        assert_eq!(tdm.report().gl_barriers, 5);
        assert_eq!(flat.report().gl_barriers, 5);
    }

    #[test]
    fn progress_observer_fires_periodically() {
        let prog = sim_isa::assemble("busy 1000\nhalt").unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let mut samples = Vec::new();
        sys.run_with_progress(10_000, 100, |rep| samples.push(rep.cycles))
            .unwrap();
        assert!(
            samples.len() >= 9,
            "expected ~10 samples, got {}",
            samples.len()
        );
        assert!(samples.windows(2).all(|w| w[1] - w[0] == 100));
    }

    #[test]
    fn report_serializes() {
        let mut sys = System::homogeneous(cfg(1), assemble("busy 5\nhalt").unwrap());
        sys.run(100).unwrap();
        let rep = sys.report();
        let json = sim_base::json::ToJson::to_json(&rep).dump();
        assert!(json.contains("\"cycles\""));
    }

    #[test]
    fn deadlock_guard_reports_stuck_cores() {
        // A core spinning forever on its own flag never halts.
        let prog = assemble("l: ld r1, 0(r0)\nbeq r0, r0, l").unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let err = sys.run(10_000).unwrap_err();
        assert!(err.contains("core0") && err.contains("core1"), "{err}");
    }

    #[test]
    fn parallel_deadlock_guard_matches_serial() {
        let prog = assemble("l: ld r1, 0(r0)\nbeq r0, r0, l").unwrap();
        let mut serial = System::homogeneous(cfg(4), prog.clone());
        let mut par = System::homogeneous(cfg(4), prog);
        let want = serial.run(10_000).unwrap_err();
        let got = par.run_with_workers(10_000, 2).unwrap_err();
        assert_eq!(want, got);
        assert_eq!(serial.now(), par.now());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        // A quick in-crate smoke; the exhaustive sweep lives in
        // tests/parallel_determinism.rs.
        let build = || {
            let n = 8;
            let env = BarrierEnv::new(BarrierKind::Csw, n, 4096);
            let progs: Vec<Program> = (0..n)
                .map(|c| {
                    let mut b = ProgBuilder::new();
                    for it in 0..3 {
                        b.li(Reg(1), (0x4000 + c * 64) as i64)
                            .li(Reg(2), it as i64)
                            .st(Reg(2), 0, Reg(1));
                        env.emit(&mut b, c, &format!("i{it}"));
                    }
                    b.halt();
                    b.build()
                })
                .collect();
            System::new(cfg(n), progs)
        };
        let mut serial = build();
        let t0 = serial.run(10_000_000).unwrap();
        for workers in [2, 3, 8] {
            let mut par = build();
            let t = par.run_with_workers(10_000_000, workers).unwrap();
            assert_eq!(t0, t, "{workers} workers: cycle count diverged");
            assert_eq!(serial.report(), par.report(), "{workers} workers");
            assert_eq!(serial.skip_stats(), par.skip_stats(), "{workers} workers");
            assert_eq!(
                serial.core_sched_stats(),
                par.core_sched_stats(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn record_then_replay_is_bit_identical() {
        // In-crate smoke across all three barrier kinds; the exhaustive
        // workload × toggle × worker sweep lives in
        // tests/replay_lockstep.rs.
        for kind in BarrierKind::ALL {
            let n = 8;
            let build = || {
                let env = BarrierEnv::new(kind, n, 4096);
                let progs: Vec<Program> = (0..n)
                    .map(|c| {
                        let mut b = ProgBuilder::new();
                        for it in 0..3 {
                            b.li(Reg(1), (0x4000 + c * 64) as i64)
                                .li(Reg(2), it as i64 + 1)
                                .st(Reg(2), 0, Reg(1));
                            env.emit(&mut b, c, &format!("i{it}"));
                        }
                        b.halt();
                        b.build()
                    })
                    .collect();
                System::new(cfg(n), progs)
            };
            let mut exec = build();
            let t0 = exec.run(10_000_000).unwrap();
            let (rec_cycles, traces) = build().run_recorded(10_000_000).unwrap();
            assert_eq!(t0, rec_cycles, "{kind:?}: recording run diverged");
            let set = TraceSet {
                cores: traces,
                pokes: vec![],
                workload: format!("{kind:?}"),
            };
            let mut rp = System::replay(cfg(n), &set);
            let t1 = rp.run(10_000_000).unwrap();
            assert_eq!(t0, t1, "{kind:?}: replay cycle count diverged");
            assert_eq!(exec.report(), rp.report(), "{kind:?}: reports diverged");
            for c in 0..n as u64 {
                assert_eq!(
                    exec.peek_word(0x4000 + c * 64),
                    rp.peek_word(0x4000 + c * 64),
                    "{kind:?}: memory diverged at core {c}'s slot"
                );
            }
            // Compressed spins must actually appear (the traces would be
            // huge otherwise) and replay must also hold with the
            // schedulers off.
            let compressed = set.cores.iter().any(|t| {
                t.ops.iter().any(|op| {
                    matches!(
                        op,
                        sim_trace::TraceOp::GlineSpin { .. } | sim_trace::TraceOp::MemSpin { .. }
                    )
                })
            });
            assert!(compressed, "{kind:?}: no spin was run-length compressed");
            let mut dense = System::replay(cfg(n), &set);
            dense.set_skip_enabled(false);
            dense.set_active_set_enabled(false);
            let t2 = dense.run(10_000_000).unwrap();
            assert_eq!(t0, t2, "{kind:?}: dense replay diverged");
            assert_eq!(
                exec.report(),
                dense.report(),
                "{kind:?}: dense replay report"
            );
        }
    }

    #[test]
    fn sched_stat_merges_are_associative_and_commutative() {
        let sk = |s: u64| SkipStats {
            attempts: s,
            skips: s.wrapping_mul(3) % 7,
            cycles_skipped: s * 11,
            fail_blocked: s % 2,
            fail_near: s % 5,
            backed_off: s * 2,
        };
        let cs = |s: u64| CoreSchedStats {
            ticks: s,
            core_steps: s * 13,
            parked_steps: s % 3,
            spin_parked_steps: s * 7 % 11,
        };
        for (a, b, c) in [(1u64, 2, 3), (0, 9, 4), (17, 0, 0), (5, 5, 5)] {
            // Commutative.
            let (mut ab, mut ba) = (sk(a), sk(b));
            ab += sk(b);
            ba += sk(a);
            assert_eq!(ab, ba);
            let (mut cab, mut cba) = (cs(a), cs(b));
            cab += cs(b);
            cba += cs(a);
            assert_eq!(cab, cba);
            // Associative.
            let mut left = sk(a);
            left += sk(b);
            left += sk(c);
            let mut bc = sk(b);
            bc += sk(c);
            let mut right = sk(a);
            right += bc;
            assert_eq!(left, right);
            let mut cleft = cs(a);
            cleft += cs(b);
            cleft += cs(c);
            let mut cbc = cs(b);
            cbc += cs(c);
            let mut cright = cs(a);
            cright += cbc;
            assert_eq!(cleft, cright);
            // Default is the identity.
            let mut id = sk(a);
            id += SkipStats::default();
            assert_eq!(id, sk(a));
            let mut cid = cs(a);
            cid += CoreSchedStats::default();
            assert_eq!(cid, cs(a));
        }
    }
}
