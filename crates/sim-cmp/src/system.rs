//! The assembled machine.

use crate::core::{Core, FfClass, SpinPlan};
use crate::stats::SystemReport;
use gline_core::{BarrierHw, BarrierNetwork};
use sim_base::config::CmpConfig;
use sim_base::stats::TimeBreakdown;
use sim_base::trace::{NullSink, TraceSink, Tracer};
use sim_base::{CoreId, Cycle};
use sim_isa::Program;
use sim_mem::MemorySystem;

/// The full CMP: cores + memory hierarchy + NoC + G-line barrier
/// hardware. Generic over the barrier network flavour (flat by default;
/// also [`gline_core::TdmBarrierNetwork`] or
/// [`gline_core::ClusteredBarrierNetwork`]) and over the trace sink
/// (disabled by default; see [`sim_base::trace`]).
#[derive(Debug)]
pub struct System<B: BarrierHw = BarrierNetwork, S: TraceSink = NullSink> {
    cfg: CmpConfig,
    cores: Vec<Core>,
    progs: Vec<Program>,
    mem: MemorySystem<S>,
    gline: B,
    tracer: Tracer<S>,
    now: Cycle,
    /// Quiescence-aware cycle skipping (see [`Self::set_skip_enabled`]).
    skip_enabled: bool,
    /// Per-core spin plans, reused across skip decisions (no per-cycle
    /// allocation on the hot path).
    ff_plans: Vec<Option<SpinPlan>>,
    /// Fast-forward effectiveness counters (diagnostics only; not part
    /// of [`SystemReport`], so skip-on and skip-off reports stay
    /// bit-identical).
    skip_stats: SkipStats,
}

/// How well the cycle-skipping scheduler is doing on a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Fast-forward attempts (one per `advance` with skipping live).
    pub attempts: u64,
    /// Attempts that jumped the clock.
    pub skips: u64,
    /// Total cycles elided across all jumps.
    pub cycles_skipped: u64,
    /// Attempts aborted because a core was actively executing.
    pub fail_blocked: u64,
    /// Attempts aborted because the earliest event was within a cycle.
    pub fail_near: u64,
}

impl<B: BarrierHw> System<B> {
    /// Builds the machine around explicit barrier hardware.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores() == hw.num_cores()`.
    pub fn with_barrier_hw(cfg: CmpConfig, progs: Vec<Program>, hw: B) -> System<B> {
        System::traced_with_barrier_hw(cfg, progs, hw, Tracer::default())
    }
}

impl<B: BarrierHw, S: TraceSink> System<B, S> {
    /// Builds the machine around explicit barrier hardware, with the
    /// cores, memory hierarchy and NoC all emitting into `tracer`. The
    /// barrier hardware traces only if it was itself built over the same
    /// sink (see [`gline_core::BarrierNetwork::traced`]).
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores() == hw.num_cores()`.
    pub fn traced_with_barrier_hw(
        cfg: CmpConfig,
        progs: Vec<Program>,
        hw: B,
        tracer: Tracer<S>,
    ) -> System<B, S> {
        assert_eq!(progs.len(), cfg.num_cores(), "one program per core");
        assert_eq!(
            hw.num_cores(),
            cfg.num_cores(),
            "barrier hardware core count mismatch"
        );
        System {
            cfg,
            cores: (0..cfg.num_cores())
                .map(|i| Core::new(CoreId::from(i), cfg.core.issue_width))
                .collect(),
            progs,
            mem: MemorySystem::traced(&cfg, tracer.clone()),
            gline: hw,
            tracer,
            now: 0,
            skip_enabled: true,
            ff_plans: vec![None; cfg.num_cores()],
            skip_stats: SkipStats::default(),
        }
    }
}

impl System {
    /// Builds the machine with one program per core.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores()`.
    pub fn new(cfg: CmpConfig, progs: Vec<Program>) -> System {
        System::traced(cfg, progs, Tracer::default())
    }

    /// Convenience: every core runs the same program.
    pub fn homogeneous(cfg: CmpConfig, prog: Program) -> System {
        let progs = vec![prog; cfg.num_cores()];
        System::new(cfg, progs)
    }

    /// Builds the machine with per-context barrier participation masks
    /// (see [`gline_core::BarrierNetwork::with_members`]); programs
    /// select contexts with the `barctx` instruction.
    pub fn with_barrier_masks(
        cfg: CmpConfig,
        progs: Vec<Program>,
        masks: Vec<Vec<bool>>,
    ) -> System {
        let hw = BarrierNetwork::with_members(cfg.mesh, cfg.gline, masks);
        System::with_barrier_hw(cfg, progs, hw)
    }
}

impl<S: TraceSink> System<BarrierNetwork<S>, S> {
    /// Builds the fully traced machine: every layer — cores, caches,
    /// directory, NoC and the G-line barrier network — emits into
    /// (clones of) `tracer`.
    ///
    /// # Panics
    /// Panics unless `progs.len() == cfg.num_cores()`.
    pub fn traced(
        cfg: CmpConfig,
        progs: Vec<Program>,
        tracer: Tracer<S>,
    ) -> System<BarrierNetwork<S>, S> {
        let hw = BarrierNetwork::traced(cfg.mesh, cfg.gline, tracer.clone());
        System::traced_with_barrier_hw(cfg, progs, hw, tracer)
    }
}

impl<B: BarrierHw, S: TraceSink> System<B, S> {
    /// The tracer shared by the machine's components.
    pub fn tracer(&self) -> &Tracer<S> {
        &self.tracer
    }

    /// The configuration in use.
    pub fn config(&self) -> &CmpConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Pre-loads a data word (before any core touches its line).
    pub fn poke_word(&mut self, addr: u64, value: u64) {
        self.mem.poke_word(addr, value);
    }

    /// Architectural value of a data word, wherever its current copy is.
    pub fn peek_word(&self, addr: u64) -> u64 {
        self.mem.peek_word(addr)
    }

    /// Access to a core (registers, breakdown, …).
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// True when every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(Core::halted)
    }

    /// Advances the whole machine one cycle.
    pub fn tick(&mut self) {
        for (core, prog) in self.cores.iter_mut().zip(&self.progs) {
            core.step(prog, &mut self.mem, &mut self.gline, self.now, &self.tracer);
        }
        self.mem.tick();
        self.gline.tick();
        self.now += 1;
    }

    /// Enables or disables quiescence-aware cycle skipping (on by
    /// default). When every core is provably parked — stalled on the
    /// memory hierarchy, inside a `busy` block, or spinning in a
    /// recognized wait loop — [`run`](Self::run) jumps the clock to the
    /// next event instead of ticking cycle by cycle, replaying the
    /// skipped span's statistics in closed form. Reports are
    /// bit-identical either way; disabling is an escape hatch for
    /// debugging (`--no-skip` in the CLI). Traced systems always take
    /// the cycle-exact path regardless of this flag, so event streams
    /// are never elided.
    pub fn set_skip_enabled(&mut self, on: bool) {
        self.skip_enabled = on;
    }

    /// Whether quiescence-aware cycle skipping is enabled.
    pub fn skip_enabled(&self) -> bool {
        self.skip_enabled
    }

    /// Fast-forward effectiveness counters for this run so far.
    pub fn skip_stats(&self) -> SkipStats {
        self.skip_stats
    }

    /// Advances one cycle — or, if skipping is permitted and the whole
    /// machine is quiescent, jumps to the next event (clamped to
    /// `horizon`, which callers use for deadline and progress-boundary
    /// alignment).
    fn advance(&mut self, horizon: Cycle) {
        if S::ENABLED || !self.skip_enabled || !self.try_fast_forward(horizon) {
            self.tick();
        }
    }

    /// Attempts a fast-forward jump. Returns `false` (machine untouched)
    /// when any component may change state within the next cycle; on
    /// `true` the clock has jumped to the earliest next event and every
    /// component has been advanced in closed form.
    fn try_fast_forward(&mut self, horizon: Cycle) -> bool {
        let mut target = horizon;
        if target <= self.now + 1 {
            return false;
        }
        self.skip_stats.attempts += 1;
        // Clamp on the component clocks first: while protocol traffic is
        // in flight the hierarchy reports an event within a cycle or two,
        // and bailing here skips the per-core classification entirely —
        // the common case on coherence-bound phases.
        if let Some(t) = self.mem.next_event() {
            target = target.min(t);
        }
        if let Some(t) = self.gline.next_event() {
            target = target.min(t);
        }
        if target <= self.now + 1 {
            self.skip_stats.fail_near += 1;
            return false;
        }
        for (i, core) in self.cores.iter().enumerate() {
            self.ff_plans[i] = None;
            match core.ff_classify(&self.progs[i], &self.mem, &self.gline, self.now) {
                FfClass::Blocked => {
                    self.skip_stats.fail_blocked += 1;
                    return false;
                }
                FfClass::NoConstraint => {}
                FfClass::WakeAt(t) => target = target.min(t),
                FfClass::Spin(plan) => self.ff_plans[i] = Some(plan),
            }
        }
        if target <= self.now + 1 {
            self.skip_stats.fail_near += 1;
            return false;
        }
        let k = target - self.now;
        self.skip_stats.skips += 1;
        self.skip_stats.cycles_skipped += k;
        for (i, core) in self.cores.iter_mut().enumerate() {
            if let Some(plan) = self.ff_plans[i] {
                core.ff_replay(plan, target, self.now, &mut self.mem);
            } else if !core.halted() {
                core.ff_stall(k);
            }
        }
        self.mem.skip_to(target);
        self.gline.skip_to(target);
        self.now = target;
        true
    }

    /// Runs until every core halts. Returns the cycle count.
    ///
    /// # Errors
    /// Returns an error naming the stuck cores if `max_cycles` elapses
    /// first (deadlock / livelock guard).
    pub fn run(&mut self, max_cycles: u64) -> Result<Cycle, String> {
        let start = self.now;
        while !self.all_halted() {
            self.advance(start + max_cycles + 1);
            if self.now - start > max_cycles {
                let stuck: Vec<String> = self
                    .cores
                    .iter()
                    .filter(|c| !c.halted())
                    .map(|c| format!("{:?}", c.id()))
                    .collect();
                return Err(format!(
                    "system did not halt within {max_cycles} cycles; still running: {}",
                    stuck.join(", ")
                ));
            }
        }
        Ok(self.now - start)
    }

    /// Like [`run`](Self::run), but invokes `observer` with a fresh
    /// [`SystemReport`] every `every` cycles — progress reporting for
    /// long simulations (the report is cumulative, not a delta).
    ///
    /// # Errors
    /// Same deadlock guard as [`run`](Self::run).
    pub fn run_with_progress(
        &mut self,
        max_cycles: u64,
        every: u64,
        mut observer: impl FnMut(&SystemReport),
    ) -> Result<Cycle, String> {
        assert!(every > 0);
        let start = self.now;
        let mut next = self.now + every;
        while !self.all_halted() {
            // Clamp skips to the observer boundary so the observer fires
            // at every `every`-cycle mark with the report as of exactly
            // that cycle, even when a jump would have crossed it.
            self.advance(next.min(start + max_cycles + 1));
            if self.now >= next {
                observer(&self.report());
                next += every;
            }
            if self.now - start > max_cycles {
                return Err(format!(
                    "system did not halt within {max_cycles} cycles; still running: {}",
                    self.cores
                        .iter()
                        .filter(|c| !c.halted())
                        .map(|c| format!("{:?}", c.id()))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(self.now - start)
    }

    /// Gathers the run's statistics.
    pub fn report(&self) -> SystemReport {
        let per_core: Vec<TimeBreakdown> = self.cores.iter().map(Core::breakdown).collect();
        let mut total_time = TimeBreakdown::new();
        for b in &per_core {
            total_time += *b;
        }
        let noc = self.mem.noc_stats();
        let gl = self.gline.stats(0);
        let mut l1_hits = 0;
        let mut l1_misses = 0;
        for i in 0..self.cores.len() {
            let s = self.mem.l1_stats(CoreId::from(i));
            l1_hits += s.hits;
            l1_misses += s.misses;
        }
        let home = self.mem.home_stats();
        SystemReport {
            cycles: self.now,
            per_core,
            total_time,
            traffic: noc.sent,
            flit_hops: noc.flit_hops,
            gl_barriers: gl.barriers_completed,
            gl_mean_latency: gl.mean_latency(),
            gl_signals: gl.signals,
            instructions: self.cores.iter().map(Core::retired).sum(),
            l1_hits,
            l1_misses,
            l2_hits: home.l2_hits,
            l2_misses: home.l2_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{emit_lock, emit_unlock, BarrierEnv, BarrierKind};
    use sim_base::stats::TimeCat;
    use sim_isa::interp::RefCmp;
    use sim_isa::{assemble, ProgBuilder, Reg};

    fn cfg(n: usize) -> CmpConfig {
        CmpConfig::icpp2010_with_cores(n)
    }

    #[test]
    fn single_core_computation_matches_reference() {
        let src = "
            li r1, 0x800      # base
            li r2, 20         # n
            li r3, 0          # i
            li r4, 0          # acc
        loop:
            mul r5, r3, r3
            st r5, 0(r1)
            ld r6, 0(r1)
            add r4, r4, r6
            addi r1, r1, 64
            addi r3, r3, 1
            bne r3, r2, loop
            st r4, 0(r1)
            halt
        ";
        let prog = assemble(src).unwrap();
        // Reference result.
        let mut rc = RefCmp::new(1, 4096);
        rc.run(&[&prog], 1_000_000).unwrap();
        // Cycle-accurate result.
        let mut sys = System::homogeneous(cfg(1), prog);
        sys.run(1_000_000).unwrap();
        let final_addr = 0x800 + 20 * 64;
        assert_eq!(sys.peek_word(final_addr), rc.word(final_addr));
        assert_eq!(
            sys.peek_word(final_addr),
            (0..20u64).map(|i| i * i).sum::<u64>()
        );
    }

    #[test]
    fn four_cores_gl_barrier_round() {
        // Each core stores its id, hits the GL barrier, then sums all
        // stored ids — the barrier must make every store visible.
        let n = 4;
        let env = BarrierEnv::new(BarrierKind::Gl, n, 4096);
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                b.li(Reg(1), c as i64 + 1)
                    .li(Reg(2), (0x1000 + c * 64) as i64)
                    .st(Reg(1), 0, Reg(2));
                env.emit(&mut b, c, "x");
                b.li(Reg(4), 0);
                for p in 0..n {
                    b.li(Reg(2), (0x1000 + p * 64) as i64)
                        .ld(Reg(3), 0, Reg(2))
                        .add(Reg(4), Reg(4), Reg(3));
                }
                b.li(Reg(2), (0x2000 + c * 64) as i64)
                    .st(Reg(4), 0, Reg(2))
                    .halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(1_000_000).unwrap();
        for c in 0..n {
            assert_eq!(
                sys.peek_word(0x2000 + c as u64 * 64),
                10,
                "core {c} missed a store"
            );
        }
        let rep = sys.report();
        assert_eq!(rep.gl_barriers, 1);
        assert!(
            (rep.gl_mean_latency - 4.0).abs() < 1e-9,
            "{}",
            rep.gl_mean_latency
        );
        assert!(rep.total_time[TimeCat::Barrier] > 0);
    }

    /// All three barrier kinds agree architecturally with the reference
    /// machine on a multi-barrier producer/consumer pattern.
    fn barrier_agreement(kind: BarrierKind, n: usize, iters: usize) {
        let env = BarrierEnv::new(kind, n, 4096);
        let slot = |c: usize| 0x4000 + c as u64 * 64;
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                // r10 = running checksum of neighbour values.
                for it in 0..iters {
                    // Phase 1: write it+1 to my slot.
                    b.li(Reg(1), it as i64 + 1)
                        .li(Reg(2), slot(c) as i64)
                        .st(Reg(1), 0, Reg(2));
                    env.emit(&mut b, c, &format!("a{it}"));
                    // Phase 2: read my right neighbour's slot; it must be
                    // exactly it+1.
                    let nb = (c + 1) % n;
                    b.li(Reg(2), slot(nb) as i64).ld(Reg(3), 0, Reg(2)).add(
                        Reg(10),
                        Reg(10),
                        Reg(3),
                    );
                    env.emit(&mut b, c, &format!("b{it}"));
                }
                b.li(Reg(2), (0x8000 + c * 64) as i64)
                    .st(Reg(10), 0, Reg(2))
                    .halt();
                b.build()
            })
            .collect();
        let expected: u64 = (1..=iters as u64).sum();
        let mut sys = System::new(cfg(n), progs);
        sys.run(20_000_000).unwrap();
        for c in 0..n {
            assert_eq!(
                sys.peek_word(0x8000 + c as u64 * 64),
                expected,
                "{kind:?} n={n} core {c}: barrier failed to order the phases"
            );
        }
    }

    #[test]
    fn gl_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Gl, 8, 4);
    }

    #[test]
    fn csw_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Csw, 8, 4);
    }

    #[test]
    fn dsw_barrier_orders_phases() {
        barrier_agreement(BarrierKind::Dsw, 8, 4);
    }

    #[test]
    fn dsw_barrier_odd_core_count() {
        barrier_agreement(BarrierKind::Dsw, 6, 3);
    }

    #[test]
    fn locks_are_mutually_exclusive_under_real_timing() {
        let n = 4;
        let lock = 4096u64;
        let counter = 8192u64;
        let per_core = 10;
        let progs: Vec<Program> = (0..n)
            .map(|_| {
                let mut b = ProgBuilder::new();
                b.li(Reg(10), per_core);
                b.label("loop");
                emit_lock(&mut b, lock, "l");
                b.li(Reg(3), counter as i64)
                    .ld(Reg(4), 0, Reg(3))
                    .addi(Reg(4), Reg(4), 1)
                    .st(Reg(4), 0, Reg(3));
                emit_unlock(&mut b, lock);
                b.addi(Reg(10), Reg(10), -1)
                    .bne(Reg(10), Reg::ZERO, "loop")
                    .halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(10_000_000).unwrap();
        assert_eq!(sys.peek_word(counter), n as u64 * per_core as u64);
        let rep = sys.report();
        assert!(
            rep.total_time[TimeCat::Lock] > 0,
            "lock time must be attributed"
        );
    }

    #[test]
    fn gl_beats_software_barriers_in_cycles() {
        // The headline claim, miniaturized: a pure barrier loop completes
        // fastest with GL, and DSW beats CSW at 16 cores.
        let n = 16;
        let iters = 10;
        let mut cycles = Vec::new();
        for kind in BarrierKind::ALL {
            let env = BarrierEnv::new(kind, n, 4096);
            let progs: Vec<Program> = (0..n)
                .map(|c| {
                    let mut b = ProgBuilder::new();
                    for it in 0..iters {
                        env.emit(&mut b, c, &format!("i{it}"));
                    }
                    b.halt();
                    b.build()
                })
                .collect();
            let mut sys = System::new(cfg(n), progs);
            let t = sys.run(50_000_000).unwrap();
            cycles.push((kind, t));
        }
        let gl = cycles[0].1;
        let csw = cycles[1].1;
        let dsw = cycles[2].1;
        assert!(
            gl < dsw && dsw < csw,
            "expected GL < DSW < CSW, got {cycles:?}"
        );
        assert!(
            gl * 5 < csw,
            "GL should dominate CSW by a wide margin: {cycles:?}"
        );
    }

    #[test]
    fn gl_barrier_generates_no_network_traffic() {
        let n = 8;
        let env = BarrierEnv::new(BarrierKind::Gl, n, 4096);
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                for it in 0..5 {
                    env.emit(&mut b, c, &format!("i{it}"));
                }
                b.halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(1_000_000).unwrap();
        let rep = sys.report();
        assert_eq!(
            rep.traffic.total(),
            0,
            "the GL barrier must not touch the NoC"
        );
        assert_eq!(rep.gl_barriers, 5);
        assert!(rep.gl_signals > 0);
    }

    #[test]
    fn group_barriers_via_contexts() {
        // Two independent 4-core groups on an 8-core machine, each
        // synchronizing through its own barrier context: group 0 runs
        // many short episodes while group 1 runs few long ones — neither
        // may block the other.
        let n = 8;
        let mut c = cfg(n);
        c.gline.contexts = 2;
        let progs: Vec<Program> = (0..n)
            .map(|core| {
                let group = core / 4;
                let mut b = ProgBuilder::new();
                b.barctx(group as u8);
                let (episodes, work) = if group == 0 { (20, 5) } else { (2, 400) };
                for ep in 0..episodes {
                    b.busy(work);
                    // Arrive and spin, group-local.
                    let lbl = format!("w{ep}");
                    b.li(Reg(1), 1).barw(Reg(1)).label(&lbl).barr(Reg(2)).bne(
                        Reg(2),
                        Reg::ZERO,
                        &lbl,
                    );
                }
                b.halt();
                b.build()
            })
            .collect();
        let masks: Vec<Vec<bool>> = vec![
            (0..n).map(|i| i < 4).collect(),
            (0..n).map(|i| i >= 4).collect(),
        ];
        let mut sys = System::with_barrier_masks(c, progs, masks);
        sys.run(1_000_000).unwrap();
        // 20 episodes in ctx 0 (by 4 cores) + 2 in ctx 1: the gl_barriers
        // counter counts per-core arrivals-episodes entered.
        assert_eq!(sys.core(CoreId(0)).gl_barriers(), 20);
        assert_eq!(sys.core(CoreId(7)).gl_barriers(), 2);
    }

    #[test]
    #[should_panic(expected = "barctx")]
    fn out_of_range_barctx_panics() {
        let prog = sim_isa::assemble(
            "barctx 3
halt",
        )
        .unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let _ = sys.run(100);
    }

    #[test]
    fn system_runs_on_tdm_barrier_hardware() {
        use gline_core::TdmBarrierNetwork;
        // The same 5-episode barrier loop on flat vs TDM hardware (four
        // logical barriers sharing one wire set; the program uses slot 0):
        // TDM must be correct and strictly slower.
        let n = 8;
        let barrier_loop = || -> Vec<Program> {
            (0..n)
                .map(|_| {
                    let mut b = ProgBuilder::new();
                    for ep in 0..5 {
                        let lbl = format!("w{ep}");
                        b.li(Reg(1), 1).barw(Reg(1)).label(&lbl).barr(Reg(2)).bne(
                            Reg(2),
                            Reg::ZERO,
                            &lbl,
                        );
                    }
                    b.halt();
                    b.build()
                })
                .collect()
        };
        let c = cfg(n);
        let hw = TdmBarrierNetwork::new(c.mesh, c.gline, 4);
        let mut tdm = System::with_barrier_hw(c, barrier_loop(), hw);
        let tdm_cycles = tdm.run(1_000_000).unwrap();
        let mut flat = System::new(cfg(n), barrier_loop());
        let flat_cycles = flat.run(1_000_000).unwrap();
        assert!(
            tdm_cycles > flat_cycles,
            "TDM slots must cost latency: {tdm_cycles} vs {flat_cycles}"
        );
        assert_eq!(tdm.report().gl_barriers, 5);
        assert_eq!(flat.report().gl_barriers, 5);
    }

    #[test]
    fn progress_observer_fires_periodically() {
        let prog = sim_isa::assemble("busy 1000\nhalt").unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let mut samples = Vec::new();
        sys.run_with_progress(10_000, 100, |rep| samples.push(rep.cycles))
            .unwrap();
        assert!(
            samples.len() >= 9,
            "expected ~10 samples, got {}",
            samples.len()
        );
        assert!(samples.windows(2).all(|w| w[1] - w[0] == 100));
    }

    #[test]
    fn report_serializes() {
        let mut sys = System::homogeneous(cfg(1), assemble("busy 5\nhalt").unwrap());
        sys.run(100).unwrap();
        let rep = sys.report();
        let json = sim_base::json::ToJson::to_json(&rep).dump();
        assert!(json.contains("\"cycles\""));
    }

    #[test]
    fn deadlock_guard_reports_stuck_cores() {
        // A core spinning forever on its own flag never halts.
        let prog = assemble("l: ld r1, 0(r0)\nbeq r0, r0, l").unwrap();
        let mut sys = System::homogeneous(cfg(2), prog);
        let err = sys.run(10_000).unwrap_err();
        assert!(err.contains("core0") && err.contains("core1"), "{err}");
    }
}
