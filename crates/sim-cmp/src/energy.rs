//! A first-order energy model — the paper's §5 future work ("we will
//! measure the efficiency of our method in terms of power consumption").
//!
//! The paper argues energy savings from traffic reduction, citing that
//! the interconnect approaches 40% of total chip energy (Wang et al.,
//! MICRO'03) and that G-lines are low-power (Krishna et al., HOTI'08).
//! This model turns the simulator's event counts into picojoules with
//! coefficients of the same order as those papers report for ~45 nm
//! technology. The coefficients are configurable; the *ratios* between
//! a software barrier's coherence storm and the GL barrier's handful of
//! one-bit signals are what matter, and they are insensitive to the
//! exact constants.

use crate::stats::SystemReport;
use sim_base::json::{Json, ToJson};

/// Energy coefficients in picojoules per event.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// One flit crossing one router + link (75-byte flit).
    pub flit_hop_pj: f64,
    /// Injection + ejection overhead per message (NI buffers, packetization).
    pub msg_endpoint_pj: f64,
    /// One 1-bit G-line broadcast (low-swing global wire + S-CSMA sense).
    pub gline_signal_pj: f64,
    /// One L1 access.
    pub l1_access_pj: f64,
    /// One L2 bank access (tag + data).
    pub l2_access_pj: f64,
    /// One main-memory line access.
    pub mem_access_pj: f64,
}

impl EnergyModel {
    /// Coefficients of the right order for a ~45 nm CMP: ~0.1 pJ/bit/hop
    /// for the NoC (600-bit flits → 60 pJ), a few pJ for cache accesses,
    /// ~2 pJ per G-line broadcast, tens of nJ per DRAM access.
    pub fn nominal_45nm() -> EnergyModel {
        EnergyModel {
            flit_hop_pj: 60.0,
            msg_endpoint_pj: 20.0,
            gline_signal_pj: 2.0,
            l1_access_pj: 10.0,
            l2_access_pj: 50.0,
            mem_access_pj: 15_000.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::nominal_45nm()
    }
}

/// An energy estimate broken down by subsystem, in nanojoules.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyEstimate {
    /// Data NoC: flit-hops plus per-message endpoints.
    pub noc_nj: f64,
    /// The dedicated G-line barrier network.
    pub gline_nj: f64,
    /// L1 accesses (hits + misses touch the array once here).
    pub l1_nj: f64,
    /// L2 bank accesses.
    pub l2_nj: f64,
    /// Memory accesses.
    pub mem_nj: f64,
}

impl EnergyEstimate {
    /// Total across subsystems.
    pub fn total_nj(&self) -> f64 {
        self.noc_nj + self.gline_nj + self.l1_nj + self.l2_nj + self.mem_nj
    }

    /// Interconnect-only energy (NoC + G-lines) — the paper's argument
    /// concerns this slice.
    pub fn interconnect_nj(&self) -> f64 {
        self.noc_nj + self.gline_nj
    }
}

impl ToJson for EnergyEstimate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("noc_nj", Json::from(self.noc_nj)),
            ("gline_nj", Json::from(self.gline_nj)),
            ("l1_nj", Json::from(self.l1_nj)),
            ("l2_nj", Json::from(self.l2_nj)),
            ("mem_nj", Json::from(self.mem_nj)),
            ("total_nj", Json::from(self.total_nj())),
        ])
    }
}

impl EnergyModel {
    /// Estimates the energy of a finished run.
    pub fn estimate(&self, rep: &SystemReport) -> EnergyEstimate {
        EnergyEstimate {
            noc_nj: (rep.flit_hops as f64 * self.flit_hop_pj
                + rep.traffic.total() as f64 * self.msg_endpoint_pj)
                / 1000.0,
            gline_nj: rep.gl_signals as f64 * self.gline_signal_pj / 1000.0,
            l1_nj: (rep.l1_hits + rep.l1_misses) as f64 * self.l1_access_pj / 1000.0,
            l2_nj: (rep.l2_hits + rep.l2_misses) as f64 * self.l2_access_pj / 1000.0,
            mem_nj: rep.l2_misses as f64 * self.mem_access_pj / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{BarrierEnv, BarrierKind};
    use crate::System;
    use sim_base::config::CmpConfig;
    use sim_isa::{ProgBuilder, Program};

    fn barrier_loop(kind: BarrierKind, n: usize, iters: usize) -> SystemReport {
        let env = BarrierEnv::new(kind, n, 0x1_0000);
        let progs: Vec<Program> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                for it in 0..iters {
                    env.emit(&mut b, c, &format!("i{it}"));
                }
                b.halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(CmpConfig::icpp2010_with_cores(n), progs);
        sys.run(100_000_000).unwrap();
        sys.report()
    }

    #[test]
    fn gl_barrier_interconnect_energy_is_orders_cheaper() {
        let model = EnergyModel::nominal_45nm();
        let gl = model.estimate(&barrier_loop(BarrierKind::Gl, 16, 10));
        let dsw = model.estimate(&barrier_loop(BarrierKind::Dsw, 16, 10));
        assert!(gl.noc_nj == 0.0, "GL must not touch the NoC");
        assert!(gl.gline_nj > 0.0);
        assert!(
            dsw.interconnect_nj() > 100.0 * gl.interconnect_nj(),
            "DSW {} nJ vs GL {} nJ",
            dsw.interconnect_nj(),
            gl.interconnect_nj()
        );
    }

    #[test]
    fn totals_add_up() {
        let e = EnergyEstimate {
            noc_nj: 1.0,
            gline_nj: 2.0,
            l1_nj: 3.0,
            l2_nj: 4.0,
            mem_nj: 5.0,
        };
        assert!((e.total_nj() - 15.0).abs() < 1e-12);
        assert!((e.interconnect_nj() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_scales_linearly_with_coefficients() {
        let rep = barrier_loop(BarrierKind::Dsw, 8, 4);
        let m1 = EnergyModel::nominal_45nm();
        let mut m2 = m1;
        m2.flit_hop_pj *= 2.0;
        let e1 = m1.estimate(&rep);
        let e2 = m2.estimate(&rep);
        let flits_nj = rep.flit_hops as f64 * m1.flit_hop_pj / 1000.0;
        assert!((e2.noc_nj - e1.noc_nj - flits_nj).abs() < 1e-9);
    }
}
