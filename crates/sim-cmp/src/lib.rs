//! # sim-cmp — the full-system tiled-CMP simulator
//!
//! Puts the pieces together into the machine of the paper's Table 1:
//! in-order 2-way cores executing [`sim_isa`] programs, private L1s and a
//! distributed shared L2 with directory MESI ([`sim_mem`]) over a 2D-mesh
//! NoC ([`sim_noc`]), plus the dedicated G-line barrier network
//! ([`gline_core`]) that this paper proposes.
//!
//! * [`core`] — the core pipeline model and its per-cycle time
//!   attribution (the Figure-6 categories).
//! * [`runtime`] — the "system library": software barrier
//!   implementations (centralized sense-reversal CSW, binary
//!   combining-tree DSW), the G-line barrier stub (GL), and test&set
//!   locks, all emitted as ISA code.
//! * [`system`] — the machine itself: construct with programs, `run()`,
//!   inspect the [`report`](system::System::report).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod core;
pub mod energy;
mod par;
pub mod replay;
pub mod runtime;
pub mod stats;
pub mod system;

pub use crate::core::Core;
pub use energy::{EnergyEstimate, EnergyModel};
pub use replay::CoreProg;
pub use runtime::BarrierKind;
pub use stats::SystemReport;
pub use system::{CoreSchedStats, SkipStats, SyncProtocol, SyncStats, System};
