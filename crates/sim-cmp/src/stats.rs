//! System-level reporting: everything Figures 5–7 and Table 2 need.

use sim_base::json::{Json, ToJson};
use sim_base::stats::{MsgClass, TimeBreakdown, TimeCat, TrafficBreakdown};
use sim_base::Cycle;

/// The result of a full-system run.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemReport {
    /// Total cycles simulated until the last core halted.
    pub cycles: Cycle,
    /// Per-core Figure-6 cycle breakdown.
    pub per_core: Vec<TimeBreakdown>,
    /// Sum of the per-core breakdowns.
    pub total_time: TimeBreakdown,
    /// Figure-7 message counts by class (messages that crossed the NoC).
    pub traffic: TrafficBreakdown,
    /// Flit × hop products on the NoC (bandwidth/energy proxy).
    pub flit_hops: u64,
    /// G-line barrier episodes completed.
    pub gl_barriers: u64,
    /// Mean G-line barrier latency in cycles (0 when unused).
    pub gl_mean_latency: f64,
    /// 1-bit signals driven on G-lines (energy proxy).
    pub gl_signals: u64,
    /// Dynamic instructions retired across all cores.
    pub instructions: u64,
    /// Aggregate L1 hits across cores.
    pub l1_hits: u64,
    /// Aggregate L1 misses across cores.
    pub l1_misses: u64,
    /// Aggregate L2-bank hits across homes.
    pub l2_hits: u64,
    /// Aggregate L2-bank misses (memory fetches).
    pub l2_misses: u64,
}

impl SystemReport {
    /// Fraction of total core cycles in a category.
    pub fn time_fraction(&self, cat: TimeCat) -> f64 {
        self.total_time.fraction(cat)
    }

    /// Execution time (cycles) of this run normalized to a baseline run.
    pub fn normalized_time(&self, baseline: &SystemReport) -> f64 {
        self.cycles as f64 / baseline.cycles as f64
    }

    /// Network messages of this run normalized to a baseline run.
    pub fn normalized_traffic(&self, baseline: &SystemReport) -> f64 {
        self.traffic.total() as f64 / baseline.traffic.total() as f64
    }

    /// Per-category cycles scaled to the baseline's total execution time,
    /// i.e. the stacked-bar heights of the paper's Figure 6.
    pub fn figure6_bar(&self, baseline: &SystemReport) -> [(TimeCat, f64); 5] {
        let denom = baseline.total_time.total() as f64;
        TimeCat::ALL.map(|c| (c, self.total_time[c] as f64 / denom))
    }

    /// Per-class messages scaled to the baseline's total, i.e. the
    /// stacked-bar heights of the paper's Figure 7.
    pub fn figure7_bar(&self, baseline: &SystemReport) -> [(MsgClass, f64); 3] {
        let denom = baseline.traffic.total().max(1) as f64;
        MsgClass::ALL.map(|c| (c, self.traffic[c] as f64 / denom))
    }
}

/// Renders a [`TimeBreakdown`] as `{category: cycles}`.
fn time_json(b: &TimeBreakdown) -> Json {
    Json::obj(TimeCat::ALL.map(|c| (c.label(), Json::from(b[c]))))
}

/// Renders a [`TrafficBreakdown`] as `{class: messages}`.
fn traffic_json(t: &TrafficBreakdown) -> Json {
    Json::obj(MsgClass::ALL.map(|c| (c.label(), Json::from(t[c]))))
}

impl ToJson for SystemReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            ("per_core", Json::arr(self.per_core.iter().map(time_json))),
            ("total_time", time_json(&self.total_time)),
            ("traffic", traffic_json(&self.traffic)),
            ("flit_hops", Json::from(self.flit_hops)),
            ("gl_barriers", Json::from(self.gl_barriers)),
            ("gl_mean_latency", Json::from(self.gl_mean_latency)),
            ("gl_signals", Json::from(self.gl_signals)),
            ("instructions", Json::from(self.instructions)),
            ("l1_hits", Json::from(self.l1_hits)),
            ("l1_misses", Json::from(self.l1_misses)),
            ("l2_hits", Json::from(self.l2_hits)),
            ("l2_misses", Json::from(self.l2_misses)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, busy: u64, barrier: u64, msgs: u64) -> SystemReport {
        let mut t = TimeBreakdown::new();
        t.add(TimeCat::Busy, busy);
        t.add(TimeCat::Barrier, barrier);
        let mut traffic = TrafficBreakdown::new();
        traffic.add(MsgClass::Request, msgs);
        SystemReport {
            cycles,
            per_core: vec![t],
            total_time: t,
            traffic,
            flit_hops: 0,
            gl_barriers: 0,
            gl_mean_latency: 0.0,
            gl_signals: 0,
            instructions: 0,
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
        }
    }

    #[test]
    fn report_json_round_trips() {
        let rep = report(1000, 500, 500, 200);
        let parsed = sim_base::json::parse(&rep.to_json().pretty()).unwrap();
        assert_eq!(parsed.get("cycles").and_then(Json::as_u64), Some(1000));
        assert_eq!(
            parsed
                .get("traffic")
                .and_then(|t| t.get("Request"))
                .and_then(Json::as_u64),
            Some(200)
        );
        assert_eq!(
            parsed
                .get("total_time")
                .and_then(|t| t.get("Barrier"))
                .and_then(Json::as_u64),
            Some(500)
        );
    }

    #[test]
    fn normalization() {
        let base = report(1000, 500, 500, 200);
        let fast = report(400, 350, 50, 60);
        assert!((fast.normalized_time(&base) - 0.4).abs() < 1e-12);
        assert!((fast.normalized_traffic(&base) - 0.3).abs() < 1e-12);
        let bar = fast.figure6_bar(&base);
        let total: f64 = bar.iter().map(|(_, v)| v).sum();
        assert!(
            (total - 0.4).abs() < 1e-12,
            "stacked bar sums to normalized time"
        );
    }
}
