//! # gline-cmp — G-line barrier synchronization for many-core CMPs
//!
//! A full reproduction of *"A G-line-based Network for Fast and Efficient
//! Barrier Synchronization in Many-Core CMPs"* (Abellán, Fernández,
//! Acacio — ICPP 2010): the proposed hardware barrier network, the
//! cycle-level tiled-CMP simulator it is evaluated on, the software
//! barrier baselines, the benchmark suite, and a real-thread barrier
//! library.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`gline`] ([`gline_core`]) — **the paper's contribution**: G-lines,
//!   S-CSMA, the Figure-4 controller FSMs, flat and clustered barrier
//!   networks.
//! * [`base`] ([`sim_base`]) — mesh geometry, Table-1 configuration,
//!   statistics categories.
//! * [`isa`] ([`sim_isa`]) — the mini RISC ISA, assembler and reference
//!   interpreters.
//! * [`noc`] ([`sim_noc`]) — the 2D-mesh wormhole NoC.
//! * [`mem`] ([`sim_mem`]) — L1s + distributed L2 with directory MESI.
//! * [`cmp`] ([`sim_cmp`]) — the assembled machine, runtime library
//!   (GL/CSW/DSW barriers, locks) and reporting.
//! * [`trace`] ([`sim_trace`]) — the on-disk per-core execution trace
//!   format behind `simcmp --record-trace` / `--replay`.
//! * [`bench_workloads`] ([`workloads`]) — Table-2 benchmark generators.
//! * [`threads`] ([`swbarrier`]) — software barrier algorithms for real
//!   Rust threads.
//!
//! ## Quickstart
//!
//! ```
//! use gline_cmp::gline::{BarrierHw, BarrierNetwork};
//! use gline_cmp::base::{config::GlineConfig, Mesh2D};
//!
//! // The paper's 32-core CMP: a 4×8 mesh, 10 G-lines per barrier.
//! let mut net = BarrierNetwork::new(Mesh2D::new(4, 8), GlineConfig::default());
//! let latency = net.run_single_barrier(&vec![0; 32]);
//! assert_eq!(latency, 4); // "only 4 cycles … once all cores have arrived"
//! ```

pub use gline_core as gline;
pub use sim_base as base;
pub use sim_cmp as cmp;
pub use sim_isa as isa;
pub use sim_mem as mem;
pub use sim_noc as noc;
pub use sim_trace as trace;
pub use swbarrier as threads;
pub use workloads as bench_workloads;
