//! Quickstart: the G-line barrier network by itself.
//!
//! Builds the paper's hardware for a 32-core CMP, runs one barrier with
//! staggered arrivals, and shows the headline property: the release
//! comes 4 cycles after the *last* arrival, no matter how many cores.
//!
//! Run with: `cargo run --example quickstart`

use gline_cmp::base::config::GlineConfig;
use gline_cmp::base::{CoreId, Mesh2D};
use gline_cmp::gline::{BarrierHw, BarrierNetwork, ClusteredBarrierNetwork};

fn main() {
    // The paper's 32-core CMP: a 4×8 mesh. Two G-lines per row plus two
    // for the first column = 10 G-lines for the whole barrier.
    let mesh = Mesh2D::new(4, 8);
    let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
    println!(
        "32-core barrier network: {} G-lines, {} context(s)",
        net.num_glines(),
        net.num_contexts()
    );

    // Cores arrive whenever they finish their work…
    let arrivals: Vec<u64> = (0..32).map(|i| (i as u64 * 7) % 50).collect();
    let latency = net.run_single_barrier(&arrivals);
    println!("staggered arrivals over 50 cycles → released {latency} cycles after the last");

    // …and with everyone arriving together it is still 4 cycles.
    let latency = net.run_single_barrier(&vec![0; 32]);
    println!("simultaneous arrivals → {latency} cycles (the paper's ideal case)");

    let stats = net.stats(0);
    println!(
        "episodes: {}, mean latency {:.1} cycles, {} one-bit G-line signals total",
        stats.barriers_completed,
        stats.mean_latency(),
        stats.signals
    );

    // Spin on bar_reg exactly like the paper's Figure 3 code would.
    for core in mesh.tiles() {
        net.write_bar_reg(core, 0, 1);
    }
    let mut spins = 0;
    while net.bar_reg(CoreId(17), 0) != 0 {
        net.tick();
        spins += 1;
    }
    println!("core 17 spun {spins} cycles on bar_reg before the hardware cleared it");

    // Beyond the electrical limit (8×8 at the default budget): the
    // two-level clustered network from the paper's future work.
    let big = Mesh2D::new(16, 16);
    let mut clustered = ClusteredBarrierNetwork::new(big, GlineConfig::default());
    let latency = clustered.run_single_barrier(&vec![0; big.num_tiles()]);
    println!(
        "256-core clustered network ({} clusters, {} G-lines): {latency} cycles per barrier",
        clustered.cluster_grid().num_tiles(),
        clustered.num_glines()
    );
}
