//! EM3D on the 32-core CMP: the paper's best-case application.
//!
//! Runs the EM3D bipartite-graph relaxation under the combining-tree
//! software barrier (DSW) and the G-line barrier (GL), and prints the
//! Figure-6 execution-time breakdown and Figure-7 traffic classes.
//!
//! Run with: `cargo run --release --example em3d_app`

use gline_cmp::base::config::CmpConfig;
use gline_cmp::base::stats::{MsgClass, TimeCat};
use gline_cmp::bench_workloads::em3d;
use gline_cmp::cmp::runtime::BarrierKind;
use gline_cmp::cmp::SystemReport;

fn run(kind: BarrierKind) -> SystemReport {
    let p = em3d::Em3dParams::scaled(1024, 20);
    let w = em3d::build(32, kind, p);
    let mut sys = w.into_system(CmpConfig::icpp2010());
    sys.run(1_000_000_000).expect("EM3D completes");
    sys.report()
}

fn main() {
    println!("EM3D, 1024+1024 nodes, degree 2, 15% remote, 20 time steps, 32 cores\n");
    let dsw = run(BarrierKind::Dsw);
    let gl = run(BarrierKind::Gl);

    println!("{:<26} {:>12} {:>12}", "", "DSW", "GL");
    println!(
        "{:<26} {:>12} {:>12}",
        "execution cycles", dsw.cycles, gl.cycles
    );
    for cat in TimeCat::ALL {
        println!(
            "{:<26} {:>11.1}% {:>11.1}%",
            format!("time in {}", cat.label()),
            100.0 * dsw.time_fraction(cat),
            100.0 * gl.time_fraction(cat)
        );
    }
    println!();
    for class in MsgClass::ALL {
        println!(
            "{:<26} {:>12} {:>12}",
            format!("{} messages", class.label()),
            dsw.traffic[class],
            gl.traffic[class]
        );
    }
    println!(
        "{:<26} {:>12} {:>12}",
        "total NoC messages",
        dsw.traffic.total(),
        gl.traffic.total()
    );
    println!(
        "{:<26} {:>12} {:>12}",
        "G-line signals (1-bit)", 0, gl.gl_signals
    );
    println!(
        "\nGL vs DSW: {:.0}% of the execution time, {:.0}% of the network traffic",
        100.0 * gl.normalized_time(&dsw),
        100.0 * gl.normalized_traffic(&dsw)
    );
    println!("(paper, full-size EM3D: 46% of the time — a 54% reduction — and 49% of the traffic)");
}
