//! Barrier showdown: GL vs DSW vs CSW on the full-system simulator.
//!
//! Reproduces the paper's Figure-5 experiment at example scale: the
//! synthetic benchmark (a loop of four consecutive barriers with no work
//! between them) runs on the cycle-level CMP under all three barrier
//! implementations, at several core counts.
//!
//! Run with: `cargo run --release --example barrier_showdown`

use gline_cmp::base::config::CmpConfig;
use gline_cmp::bench_workloads::synthetic;
use gline_cmp::cmp::runtime::BarrierKind;

fn main() {
    let iters = 25;
    println!("synthetic benchmark: {iters} iterations x 4 consecutive barriers");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>14}",
        "cores", "CSW", "DSW", "GL", "GL speedup"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let mut per_barrier = Vec::new();
        for kind in [BarrierKind::Csw, BarrierKind::Dsw, BarrierKind::Gl] {
            let w = synthetic::build(n, kind, iters);
            let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(n));
            let cycles = sys.run(1_000_000_000).expect("completes");
            per_barrier.push(synthetic::cycles_per_barrier(cycles, iters));
        }
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>13.0}x",
            n,
            per_barrier[0],
            per_barrier[1],
            per_barrier[2],
            per_barrier[1] / per_barrier[2] // vs the best software barrier
        );
    }
    println!("\n(GL stays flat because the G-line network resolves the whole barrier");
    println!(" in 4 cycles of dedicated wiring; the software barriers pay coherence");
    println!(" round-trips that grow with the core count.)");
}
