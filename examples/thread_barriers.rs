//! The real-thread barrier library on your actual hardware.
//!
//! Times the five `swbarrier` algorithms over a tight barrier loop —
//! the host-machine analogue of the paper's Figure 5 (here the
//! "hardware barrier" column is missing for the obvious reason: your
//! CPU has no G-lines, which is rather the paper's point).
//!
//! Run with: `cargo run --release --example thread_barriers [threads]`

use gline_cmp::threads::{
    CentralizedBarrier, CombiningTreeBarrier, DisseminationBarrier, StaticTreeBarrier,
    ThreadBarrier, TournamentBarrier,
};
use std::sync::Arc;
use std::time::Instant;

fn bench<B: ThreadBarrier + 'static>(name: &str, bar: B, episodes: u64) {
    let n = bar.num_threads();
    let bar = Arc::new(bar);
    // simlint: allow(wall-clock) — this example times real OS threads;
    // nothing here feeds the deterministic simulation.
    let start = Instant::now();
    let handles: Vec<_> = (0..n)
        .map(|tid| {
            let bar = Arc::clone(&bar);
            std::thread::spawn(move || {
                for _ in 0..episodes {
                    bar.wait(tid);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let ns = start.elapsed().as_nanos() as f64 / episodes as f64;
    println!("  {name:<24} {ns:>10.0} ns/barrier");
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get().min(8)));
    let episodes = 20_000;
    println!("{n} threads, {episodes} barrier episodes each:");
    bench(
        "centralized (CSW-like)",
        CentralizedBarrier::new(n),
        episodes,
    );
    bench(
        "combining tree (DSW)",
        CombiningTreeBarrier::binary(n),
        episodes,
    );
    bench(
        "combining tree, 4-ary",
        CombiningTreeBarrier::with_arity(n, 4),
        episodes,
    );
    bench("dissemination", DisseminationBarrier::new(n), episodes);
    bench("tournament", TournamentBarrier::new(n), episodes);
    bench("static tree", StaticTreeBarrier::new(n), episodes);
}
