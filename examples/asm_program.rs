//! Writing and running assembly on the simulated CMP.
//!
//! Assembles a small parallel program by hand — each core computes a
//! partial sum, announces it, and core 0 reduces after a G-line barrier —
//! then runs it on the cycle-level machine and cross-checks against the
//! architectural reference interpreter.
//!
//! Run with: `cargo run --example asm_program`

use gline_cmp::base::config::CmpConfig;
use gline_cmp::base::CoreId;
use gline_cmp::cmp::System;
use gline_cmp::isa::interp::RefCmp;
use gline_cmp::isa::{assemble, Program};

fn worker(core: usize, n: usize) -> String {
    // Each core sums the integers in its range [core*100, (core+1)*100)
    // and stores the partial to a padded slot; the G-line barrier (the
    // paper's Figure-3 idiom) orders the partials before the reduction.
    let mut src = format!(
        "
        # core {core}: sum my range into r3
        li r1, {start}
        li r2, {end}
        li r3, 0
    loop:
        add r3, r3, r1
        addi r1, r1, 1
        bne r1, r2, loop
        li r4, {slot}
        st r3, 0(r4)

        # announce arrival and wait for everyone (bar_reg idiom)
        region barrier
        li r5, 1
        barw r5
    spin:
        barr r6
        bne r6, r0, spin
        region normal
        ",
        start = core * 100,
        end = (core + 1) * 100,
        slot = 0x1000 + core * 64,
    );
    if core == 0 {
        src.push_str("\n        # core 0 reduces all partials into 0x8000\n        li r7, 0\n");
        for c in 0..n {
            src.push_str(&format!(
                "        li r4, {}\n        ld r8, 0(r4)\n        add r7, r7, r8\n",
                0x1000 + c * 64
            ));
        }
        src.push_str("        li r4, 0x8000\n        st r7, 0(r4)\n");
    }
    src.push_str("        halt\n");
    src
}

fn main() {
    let n = 8;
    let progs: Vec<Program> = (0..n)
        .map(|c| assemble(&worker(c, n)).expect("assembles"))
        .collect();
    println!("core 0 program:\n{}", progs[0]);

    // Golden model: the idealized reference machine.
    let mut golden = RefCmp::new(n, 8192);
    let refs: Vec<&Program> = progs.iter().collect();
    golden.run(&refs, 10_000_000).expect("reference run");
    let expected = golden.word(0x8000);

    // Cycle-accurate machine.
    let mut sys = System::new(CmpConfig::icpp2010_with_cores(n), progs);
    let cycles = sys.run(10_000_000).expect("simulated run");
    let got = sys.peek_word(0x8000);

    println!("reference result : {expected}");
    println!("simulated result : {got} (in {cycles} cycles)");
    assert_eq!(got, expected);
    assert_eq!(got, (0..(n as u64 * 100)).sum::<u64>());
    let rep = sys.report();
    println!(
        "instructions: {}, L1 hits: {}, L1 misses: {}, NoC messages: {}, GL barriers: {}",
        rep.instructions,
        rep.l1_hits,
        rep.l1_misses,
        rep.traffic.total(),
        rep.gl_barriers
    );
    let _ = CoreId(0);
}
